package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64. Record methods are
// lock-free and allocation-free; register once at construction, then Add
// from the hot path.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n and returns the new value.
//
//sieve:noalloc steady-state record path, pinned by AllocsPerRun
func (c *Counter) Add(n int64) int64 { return c.v.Add(n) }

// Inc increments the counter by one and returns the new value.
//
//sieve:noalloc steady-state record path, pinned by AllocsPerRun
func (c *Counter) Inc() int64 { return c.v.Add(1) }

// Value returns the current count.
//
//sieve:noalloc read path is as hot as the record path
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable int64 — a level, not a rate.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
//
//sieve:noalloc steady-state record path, pinned by AllocsPerRun
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n and returns the new value.
//
//sieve:noalloc steady-state record path, pinned by AllocsPerRun
func (g *Gauge) Add(n int64) int64 { return g.v.Add(n) }

// Max raises the gauge to n if n exceeds the current value (a running
// high-water mark, e.g. the largest inference batch seen).
//
//sieve:noalloc steady-state record path, pinned by AllocsPerRun
func (g *Gauge) Max(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current level.
//
//sieve:noalloc read path is as hot as the record path
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket cumulative histogram over int64
// observations. Bounds are inclusive upper bounds (Prometheus `le`
// semantics) plus an implicit +Inf bucket; they are fixed at registration
// so Observe never allocates.
type Histogram struct {
	bounds  []int64
	buckets []atomic.Int64 // len(bounds)+1, last is +Inf
	sum     atomic.Int64
	count   atomic.Int64
}

// Observe records one value.
//
//sieve:noalloc steady-state record path, pinned by AllocsPerRun
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations so far.
//
//sieve:noalloc read path is as hot as the record path
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations so far.
//
//sieve:noalloc read path is as hot as the record path
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// instrument kinds, for family-level consistency checks.
const (
	kindCounter = "counter"
	kindGauge   = "gauge"
	kindHist    = "histogram"
)

// entry is one registered series.
type entry struct {
	key    string // canonical Key(name, labels...)
	name   string
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry owns a set of pre-registered instruments. Registration
// (Counter/Gauge/Histogram) takes a lock and may allocate; it happens at
// construction time. Recording happens on the instruments themselves and
// never touches the registry. Snapshot and the exposition writers emit in
// sorted order, so their output is deterministic regardless of
// registration or goroutine interleaving.
type Registry struct {
	mu      sync.Mutex
	index   map[string]*entry
	entries []*entry
	kinds   map[string]string // family name -> kind
	help    map[string]string // family name -> help text
	collect []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		index: make(map[string]*entry),
		kinds: make(map[string]string),
		help:  make(map[string]string),
	}
}

// Counter registers (or returns the existing) counter series for name and
// labels. Panics if the family is already registered as a different kind —
// instrument identity is a construction-time programming contract.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	e := r.register(name, kindCounter, labels)
	return e.c
}

// Gauge registers (or returns the existing) gauge series.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	e := r.register(name, kindGauge, labels)
	return e.g
}

// Histogram registers (or returns the existing) histogram series with the
// given inclusive upper bounds (ascending; +Inf is implicit). Bounds must
// match across series of one family.
func (r *Registry) Histogram(name string, bounds []int64, labels ...Label) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %s bounds not ascending", name))
		}
	}
	e := r.register(name, kindHist, labels)
	if e.h.bounds == nil {
		b := make([]int64, len(bounds))
		copy(b, bounds)
		e.h.bounds = b
		e.h.buckets = make([]atomic.Int64, len(bounds)+1)
	}
	return e.h
}

// register finds or creates the series entry, enforcing kind consistency.
func (r *Registry) register(name, kind string, labels []Label) *entry {
	key := Key(name, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	if k, ok := r.kinds[name]; ok && k != kind {
		panic(fmt.Sprintf("telemetry: %s already registered as %s, not %s", name, k, kind))
	}
	if e, ok := r.index[key]; ok {
		return e
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	e := &entry{key: key, name: name, labels: ls}
	switch kind {
	case kindCounter:
		e.c = &Counter{}
	case kindGauge:
		e.g = &Gauge{}
	case kindHist:
		e.h = &Histogram{}
	}
	r.kinds[name] = kind
	r.index[key] = e
	r.entries = append(r.entries, e)
	return e
}

// Describe attaches Prometheus HELP text to a metric family.
func (r *Registry) Describe(name, help string) {
	r.mu.Lock()
	r.help[name] = help
	r.mu.Unlock()
}

// OnCollect registers a callback run at the start of every Snapshot and
// WritePrometheus, before instrument values are read — the hook for
// scrape-time gauges (uplink bytes, store occupancy) whose source of
// truth lives elsewhere. Callbacks run outside the registry lock and may
// register or set instruments; they must be safe to call concurrently
// with recording.
func (r *Registry) OnCollect(fn func()) {
	r.mu.Lock()
	r.collect = append(r.collect, fn)
	r.mu.Unlock()
}

// runCollectors invokes the OnCollect hooks outside the registry lock.
func (r *Registry) runCollectors() {
	r.mu.Lock()
	fns := make([]func(), len(r.collect))
	copy(fns, r.collect)
	r.mu.Unlock()
	for _, fn := range fns {
		fn()
	}
}

// sortedEntries copies the entry list, sorted by (name, key), for export.
func (r *Registry) sortedEntries() []*entry {
	r.mu.Lock()
	es := make([]*entry, len(r.entries))
	copy(es, r.entries)
	r.mu.Unlock()
	sort.Slice(es, func(i, j int) bool {
		if es[i].name != es[j].name {
			return es[i].name < es[j].name
		}
		return es[i].key < es[j].key
	})
	return es
}

// CounterPoint is one counter series in a Snapshot.
type CounterPoint struct {
	Key   string
	Value int64
}

// GaugePoint is one gauge series in a Snapshot.
type GaugePoint struct {
	Key   string
	Value int64
}

// HistogramPoint is one histogram series in a Snapshot.
type HistogramPoint struct {
	Key    string
	Bounds []int64
	Counts []int64 // per-bucket (not cumulative), last is +Inf
	Sum    int64
	Count  int64
}

// Snapshot is a point-in-time copy of every registered series, sorted by
// key. Individual values are atomically read; the snapshot as a whole is
// not a cross-instrument atomic cut (concurrent recorders may land
// between reads), which is the standard monitoring contract.
type Snapshot struct {
	Counters   []CounterPoint
	Gauges     []GaugePoint
	Histograms []HistogramPoint
}

// Snapshot captures the current value of every series.
func (r *Registry) Snapshot() Snapshot {
	r.runCollectors()
	var s Snapshot
	for _, e := range r.sortedEntries() {
		switch {
		case e.c != nil:
			s.Counters = append(s.Counters, CounterPoint{Key: e.key, Value: e.c.Value()})
		case e.g != nil:
			s.Gauges = append(s.Gauges, GaugePoint{Key: e.key, Value: e.g.Value()})
		case e.h != nil:
			hp := HistogramPoint{Key: e.key, Sum: e.h.Sum(), Count: e.h.Count()}
			hp.Bounds = append(hp.Bounds, e.h.bounds...)
			for i := range e.h.buckets {
				hp.Counts = append(hp.Counts, e.h.buckets[i].Load())
			}
			s.Histograms = append(s.Histograms, hp)
		}
	}
	return s
}

// Counter returns the value of the counter series with the given
// canonical key (see Key), or 0 if absent.
func (s Snapshot) Counter(key string) int64 {
	i := sort.Search(len(s.Counters), func(i int) bool { return s.Counters[i].Key >= key })
	if i < len(s.Counters) && s.Counters[i].Key == key {
		return s.Counters[i].Value
	}
	return 0
}

// Gauge returns the value of the gauge series with the given canonical
// key, or 0 if absent.
func (s Snapshot) Gauge(key string) int64 {
	i := sort.Search(len(s.Gauges), func(i int) bool { return s.Gauges[i].Key >= key })
	if i < len(s.Gauges) && s.Gauges[i].Key == key {
		return s.Gauges[i].Value
	}
	return 0
}

// Diff returns a snapshot whose counters and histograms are this
// snapshot's values minus base's (series absent from base pass through
// unchanged); gauges keep their current value. Use it to meter an
// interval: take a snapshot before and after, diff, read rates.
func (s Snapshot) Diff(base Snapshot) Snapshot {
	var d Snapshot
	d.Counters = make([]CounterPoint, len(s.Counters))
	copy(d.Counters, s.Counters)
	for i := range d.Counters {
		d.Counters[i].Value -= base.Counter(d.Counters[i].Key)
	}
	d.Gauges = make([]GaugePoint, len(s.Gauges))
	copy(d.Gauges, s.Gauges)
	for i := range s.Histograms {
		hp := s.Histograms[i]
		out := HistogramPoint{Key: hp.Key, Sum: hp.Sum, Count: hp.Count}
		out.Bounds = append(out.Bounds, hp.Bounds...)
		out.Counts = append(out.Counts, hp.Counts...)
		for _, bh := range base.Histograms {
			if bh.Key != hp.Key || len(bh.Counts) != len(out.Counts) {
				continue
			}
			out.Sum -= bh.Sum
			out.Count -= bh.Count
			for j := range out.Counts {
				out.Counts[j] -= bh.Counts[j]
			}
			break
		}
		d.Histograms = append(d.Histograms, out)
	}
	return d
}
