// Package labels implements the ground-truth semantics of the SiEVE
// evaluation (Section IV/V-A): per-frame object label sets, "events"
// (maximal runs of frames sharing one label set), and the three metrics the
// paper scores event detection with — per-frame accuracy under label
// propagation, filtering rate, and their harmonic mean (the paper's
// "F1-score").
package labels

import (
	"sort"
	"strings"
)

// Set is a canonical (sorted, deduplicated) set of object class labels
// visible in one frame. The empty set means "no label".
type Set []string

// NewSet builds a canonical Set from names (duplicates removed).
func NewSet(names ...string) Set {
	if len(names) == 0 {
		return nil
	}
	uniq := make(map[string]struct{}, len(names))
	for _, n := range names {
		if n != "" {
			uniq[n] = struct{}{}
		}
	}
	out := make(Set, 0, len(uniq))
	for n := range uniq {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Key returns a canonical string form ("" for the empty set).
func (s Set) Key() string { return strings.Join(s, "|") }

// Equal reports whether two canonical sets are identical.
func (s Set) Equal(o Set) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Empty reports whether the set has no labels.
func (s Set) Empty() bool { return len(s) == 0 }

// Contains reports whether the set includes name.
func (s Set) Contains(name string) bool {
	i := sort.SearchStrings(s, name)
	return i < len(s) && s[i] == name
}

// Track is the per-frame ground truth of a video: Track[i] is the label set
// of frame i.
type Track []Set

// Event is a maximal run of consecutive frames [Start, End) sharing the
// same label set — the paper's unit of change ("a car entered", "the car
// left").
type Event struct {
	Start, End int
	Labels     Set
}

// Len returns the event length in frames.
func (e Event) Len() int { return e.End - e.Start }

// Events segments a track into its maximal constant-label runs.
func Events(t Track) []Event {
	if len(t) == 0 {
		return nil
	}
	out := []Event{{Start: 0, Labels: t[0]}}
	for i := 1; i < len(t); i++ {
		if !t[i].Equal(out[len(out)-1].Labels) {
			out[len(out)-1].End = i
			out = append(out, Event{Start: i, Labels: t[i]})
		}
	}
	out[len(out)-1].End = len(t)
	return out
}

// Propagate assigns a label set to every frame given the sampled frame
// indices: each sampled frame receives its true labels (the reference NN is
// treated as an oracle, as in the paper), and every following frame inherits
// them until the next sample. Frames before the first sample get the empty
// set. samples must be sorted ascending; out-of-range indices are ignored.
func Propagate(t Track, samples []int) Track {
	out := make(Track, len(t))
	cur := Set(nil)
	si := 0
	for i := range t {
		for si < len(samples) && samples[si] <= i {
			if samples[si] == i {
				cur = t[i]
			}
			si++
		}
		out[i] = cur
	}
	return out
}

// Accuracy is the fraction of frames whose propagated labels match the
// ground truth — the paper's "accuracy of per-frame object detection".
func Accuracy(t Track, samples []int) float64 {
	if len(t) == 0 {
		return 1
	}
	prop := Propagate(t, samples)
	correct := 0
	for i := range t {
		if prop[i].Equal(t[i]) {
			correct++
		}
	}
	return float64(correct) / float64(len(t))
}

// SampleShare is the fraction of frames that undergo NN processing
// (the paper's "percentage of sampled frames", SS).
func SampleShare(numSamples, totalFrames int) float64 {
	if totalFrames == 0 {
		return 0
	}
	return float64(numSamples) / float64(totalFrames)
}

// FilteringRate is the fraction of frames *not* sampled (the paper's fr):
// FilteringRate + SampleShare == 1.
func FilteringRate(numSamples, totalFrames int) float64 {
	if totalFrames == 0 {
		return 1
	}
	return 1 - SampleShare(numSamples, totalFrames)
}

// F1 is the harmonic mean of accuracy and filtering rate, the paper's
// configuration quality score.
func F1(acc, fr float64) float64 {
	if acc+fr == 0 {
		return 0
	}
	return 2 * acc * fr / (acc + fr)
}

// EventRecall reports the fraction of events containing at least one
// sampled frame (a complement metric: a missed event can never be labelled
// correctly, no matter how labels propagate).
func EventRecall(t Track, samples []int) float64 {
	evs := Events(t)
	if len(evs) == 0 {
		return 1
	}
	hit := 0
	si := 0
	for _, ev := range evs {
		for si < len(samples) && samples[si] < ev.Start {
			si++
		}
		if si < len(samples) && samples[si] < ev.End {
			hit++
		}
	}
	return float64(hit) / float64(len(evs))
}

// EventStarts returns the first frame index of every event — the paper's
// definition of a perfect event detector's output.
func EventStarts(t Track) []int {
	evs := Events(t)
	out := make([]int, len(evs))
	for i, ev := range evs {
		out[i] = ev.Start
	}
	return out
}
