package labels

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func track(keys ...string) Track {
	t := make(Track, len(keys))
	for i, k := range keys {
		if k == "" {
			t[i] = nil
			continue
		}
		t[i] = NewSet(k)
	}
	return t
}

func TestNewSetCanonical(t *testing.T) {
	s := NewSet("car", "bus", "car", "")
	if s.Key() != "bus|car" {
		t.Fatalf("Key = %q, want bus|car", s.Key())
	}
	if !s.Contains("car") || !s.Contains("bus") || s.Contains("truck") {
		t.Fatal("Contains misbehaves")
	}
	if !NewSet().Empty() || !NewSet("").Empty() {
		t.Fatal("empty construction")
	}
	if !NewSet("a", "b").Equal(NewSet("b", "a")) {
		t.Fatal("order-insensitive equality failed")
	}
	if NewSet("a").Equal(NewSet("a", "b")) {
		t.Fatal("different sizes equal")
	}
}

func TestEventsSegmentation(t *testing.T) {
	tr := track("", "", "car", "car", "car", "", "bus", "bus")
	evs := Events(tr)
	if len(evs) != 4 {
		t.Fatalf("events = %d, want 4", len(evs))
	}
	wantStarts := []int{0, 2, 5, 6}
	wantEnds := []int{2, 5, 6, 8}
	for i, ev := range evs {
		if ev.Start != wantStarts[i] || ev.End != wantEnds[i] {
			t.Errorf("event %d = [%d,%d), want [%d,%d)", i, ev.Start, ev.End, wantStarts[i], wantEnds[i])
		}
	}
	if evs[1].Labels.Key() != "car" || evs[3].Labels.Key() != "bus" {
		t.Error("event labels wrong")
	}
	if Events(nil) != nil {
		t.Error("empty track should have no events")
	}
}

func TestPropagate(t *testing.T) {
	tr := track("", "car", "car", "", "")
	prop := Propagate(tr, []int{1, 3})
	wantKeys := []string{"", "car", "car", "", ""}
	for i, w := range wantKeys {
		if prop[i].Key() != w {
			t.Errorf("prop[%d] = %q, want %q", i, prop[i].Key(), w)
		}
	}
	// No samples: all empty.
	prop = Propagate(tr, nil)
	for i := range prop {
		if !prop[i].Empty() {
			t.Errorf("prop[%d] not empty with no samples", i)
		}
	}
}

func TestAccuracyPerfectAtEventStarts(t *testing.T) {
	tr := track("", "", "car", "car", "", "bus", "bus", "bus", "", "")
	if acc := Accuracy(tr, EventStarts(tr)); acc != 1 {
		t.Fatalf("accuracy at event starts = %v, want 1", acc)
	}
}

func TestAccuracyAllFramesSampled(t *testing.T) {
	tr := track("", "car", "bus", "", "car")
	all := make([]int, len(tr))
	for i := range all {
		all[i] = i
	}
	if acc := Accuracy(tr, all); acc != 1 {
		t.Fatalf("accuracy with all samples = %v", acc)
	}
}

func TestAccuracyMidEventSample(t *testing.T) {
	// Event "car" spans [2,6) of 10 frames; sampling at 4 misses frames 2-3.
	tr := track("", "", "car", "car", "car", "car", "", "", "", "")
	acc := Accuracy(tr, []int{0, 4})
	// Frames 0-1 correct (empty), 2-3 wrong, 4-5 correct, 6-9 WRONG ("car"
	// propagates into the empty event). 6 correct out of 10... wait: frames
	// 6-9 inherit "car" from sample 4 — incorrect. So correct = 0,1,4,5 = 4.
	if math.Abs(acc-0.4) > 1e-9 {
		t.Fatalf("accuracy = %v, want 0.4", acc)
	}
	// Adding a sample at the empty event start fixes 6-9.
	acc = Accuracy(tr, []int{0, 4, 6})
	if math.Abs(acc-0.8) > 1e-9 {
		t.Fatalf("accuracy = %v, want 0.8", acc)
	}
}

func TestRatesIdentity(t *testing.T) {
	if got := SampleShare(5, 200); got != 0.025 {
		t.Fatalf("SampleShare = %v", got)
	}
	f := func(n uint8, total uint16) bool {
		tt := int(total)
		nn := int(n)
		if tt == 0 {
			return FilteringRate(nn, tt) == 1 && SampleShare(nn, tt) == 0
		}
		return math.Abs(FilteringRate(nn, tt)+SampleShare(nn, tt)-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestF1(t *testing.T) {
	if F1(0, 0) != 0 {
		t.Fatal("F1(0,0) should be 0")
	}
	if F1(1, 1) != 1 {
		t.Fatal("F1(1,1) should be 1")
	}
	got := F1(0.8, 0.4)
	want := 2 * 0.8 * 0.4 / 1.2
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("F1 = %v, want %v", got, want)
	}
	// Symmetry.
	if F1(0.3, 0.9) != F1(0.9, 0.3) {
		t.Fatal("F1 not symmetric")
	}
}

func TestEventRecall(t *testing.T) {
	tr := track("", "", "car", "car", "", "")
	if r := EventRecall(tr, []int{0, 2, 4}); r != 1 {
		t.Fatalf("recall = %v, want 1", r)
	}
	if r := EventRecall(tr, []int{0}); math.Abs(r-1.0/3) > 1e-9 {
		t.Fatalf("recall = %v, want 1/3", r)
	}
	if r := EventRecall(nil, nil); r != 1 {
		t.Fatalf("recall of empty track = %v", r)
	}
}

func TestEventsPartitionProperty(t *testing.T) {
	// Events must partition [0, len) exactly, with adjacent events differing.
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		classes := []string{"", "car", "bus", "person"}
		tr := make(Track, int(n))
		for i := range tr {
			c := classes[rng.Intn(len(classes))]
			if c == "" {
				tr[i] = nil
			} else {
				tr[i] = NewSet(c)
			}
		}
		evs := Events(tr)
		if len(tr) == 0 {
			return evs == nil
		}
		pos := 0
		for i, ev := range evs {
			if ev.Start != pos || ev.End <= ev.Start {
				return false
			}
			if i > 0 && ev.Labels.Equal(evs[i-1].Labels) {
				return false
			}
			pos = ev.End
		}
		return pos == len(tr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAccuracySupersetOfEventStartsIsPerfect(t *testing.T) {
	// Any sample set containing every event start scores accuracy 1
	// (extra mid-event samples re-read the same oracle labels).
	// Note accuracy is NOT monotone in prefixes of the event-start list:
	// sampling a new event start can invalidate a later stretch that was
	// correct only by stale-label coincidence.
	f := func(seed int64, n uint8, extras []uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		classes := []string{"", "car", "bus"}
		tr := make(Track, int(n))
		cur := ""
		for i := range tr {
			if rng.Intn(10) == 0 {
				cur = classes[rng.Intn(len(classes))]
			}
			if cur == "" {
				tr[i] = nil
			} else {
				tr[i] = NewSet(cur)
			}
		}
		if len(tr) == 0 {
			return Accuracy(tr, nil) == 1
		}
		samples := EventStarts(tr)
		for _, e := range extras {
			samples = append(samples, int(e)%len(tr))
		}
		sortInts(samples)
		return Accuracy(tr, samples) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
