package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

// recordingSleeper logs each requested sleep without blocking — the
// VirtualClock stand-in for schedule assertions.
type recordingSleeper struct {
	slept []time.Duration
	fail  error // returned instead of sleeping when set
}

func (s *recordingSleeper) Sleep(ctx context.Context, d time.Duration) error {
	if s.fail != nil {
		return s.fail
	}
	s.slept = append(s.slept, d)
	return nil
}

func TestDelaySchedule(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2, MaxAttempts: 8}
	want := []time.Duration{
		0,
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		80 * time.Millisecond,
		80 * time.Millisecond, // capped
		80 * time.Millisecond,
	}
	for i, w := range want {
		if d := b.Delay(i); d != w {
			t.Fatalf("Delay(%d) = %v, want %v", i, d, w)
		}
	}
	// Determinism: the schedule is a pure function — same inputs, same
	// delays on every call.
	for i := range want {
		if b.Delay(i) != b.Delay(i) {
			t.Fatalf("Delay(%d) not stable", i)
		}
	}
}

func TestDelayConstantFactor(t *testing.T) {
	b := Backoff{Base: 5 * time.Millisecond, Factor: 1}
	for i := 1; i < 5; i++ {
		if d := b.Delay(i); d != 5*time.Millisecond {
			t.Fatalf("constant Delay(%d) = %v", i, d)
		}
	}
	// Sub-2 factors other than exactly 1 snap to doubling.
	b2 := Backoff{Base: 5 * time.Millisecond, Factor: 1.5}
	if d := b2.Delay(2); d != 10*time.Millisecond {
		t.Fatalf("snapped Delay(2) = %v, want 10ms", d)
	}
}

func TestDoSucceedsAfterRetries(t *testing.T) {
	s := &recordingSleeper{}
	calls := 0
	attempts, err := Do(context.Background(), s, Backoff{Base: time.Millisecond, Factor: 2, MaxAttempts: 5}, func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || attempts != 3 {
		t.Fatalf("Do = (%d, %v), want (3, nil)", attempts, err)
	}
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond}
	if len(s.slept) != len(want) {
		t.Fatalf("slept %v, want %v", s.slept, want)
	}
	for i := range want {
		if s.slept[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v", i, s.slept[i], want[i])
		}
	}
}

func TestDoExhausts(t *testing.T) {
	s := &recordingSleeper{}
	boom := errors.New("boom")
	attempts, err := Do(context.Background(), s, Backoff{Base: time.Millisecond, MaxAttempts: 3}, func() error { return boom })
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3", attempts)
	}
	if !errors.Is(err, ErrAttemptsExhausted) || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want ErrAttemptsExhausted joined with boom", err)
	}
}

func TestDoCancelledDuringSleep(t *testing.T) {
	s := &recordingSleeper{fail: context.Canceled}
	attempts, err := Do(context.Background(), s, Backoff{Base: time.Millisecond, MaxAttempts: 3}, func() error { return errors.New("x") })
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (cancelled before retry)", attempts)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestDoCancelledBeforeFirstAttempt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	attempts, err := Do(ctx, &recordingSleeper{}, Backoff{Base: time.Millisecond, MaxAttempts: 3}, func() error { return nil })
	if attempts != 0 || !errors.Is(err, context.Canceled) {
		t.Fatalf("Do on cancelled ctx = (%d, %v)", attempts, err)
	}
}

func TestDoMinimumOneAttempt(t *testing.T) {
	attempts, err := Do(context.Background(), &recordingSleeper{}, Backoff{}, func() error { return nil })
	if attempts != 1 || err != nil {
		t.Fatalf("Do with zero Backoff = (%d, %v), want (1, nil)", attempts, err)
	}
}
