// Package retry provides the deterministic exponential-backoff schedule
// used by every reconnect/resync loop in the repo (Pusher reconnects,
// cluster delta sync). The schedule is jitter-free on purpose: sleeps go
// through an injectable clock, so a VirtualClock replay produces the exact
// same attempt timeline every run — randomised jitter would break the
// byte-identical event-log contract for no benefit in a simulated fabric.
package retry

import (
	"context"
	"errors"
	"time"
)

// ErrAttemptsExhausted is returned by Do when every allowed attempt failed.
// The last attempt's error is joined so callers can inspect the root cause.
var ErrAttemptsExhausted = errors.New("retry: attempts exhausted")

// Sleeper is the clock dependency: Sleep blocks for d (or advances a
// virtual clock) and returns the context error on cancellation. The root
// package's Clock satisfies it.
type Sleeper interface {
	Sleep(ctx context.Context, d time.Duration) error
}

// Backoff is a deterministic exponential schedule: attempt i (0-based)
// waits Base·Factor^i before running, capped at Max. The zero value is
// unusable; use a literal with at least Base and MaxAttempts set.
type Backoff struct {
	// Base is the delay before the first retry (attempt 1). Attempt 0 runs
	// immediately.
	Base time.Duration
	// Max caps the per-attempt delay; 0 means uncapped.
	Max time.Duration
	// Factor multiplies the delay each attempt; values < 2 are treated
	// as 2 (the conventional doubling schedule) unless exactly 1, which
	// gives constant delay.
	Factor float64
	// MaxAttempts bounds the total number of tries (including the first);
	// values < 1 are treated as 1.
	MaxAttempts int
}

// Delay returns the wait before the given 0-based attempt. Attempt 0 has no
// delay; attempt i ≥ 1 waits Base·Factor^(i−1), capped at Max. The schedule
// is a pure function of (Backoff, attempt) — no randomness, no wall clock.
func (b Backoff) Delay(attempt int) time.Duration {
	if attempt <= 0 || b.Base <= 0 {
		return 0
	}
	f := b.Factor
	if f != 1 && f < 2 {
		f = 2
	}
	d := float64(b.Base)
	for i := 1; i < attempt; i++ {
		d *= f
		if b.Max > 0 && d >= float64(b.Max) {
			return b.Max
		}
	}
	if b.Max > 0 && time.Duration(d) > b.Max {
		return b.Max
	}
	return time.Duration(d)
}

// Do runs fn until it succeeds, the schedule is exhausted, or ctx is
// cancelled, sleeping the schedule's delay on clk between attempts. It
// returns the number of attempts made and nil on success; on exhaustion it
// returns ErrAttemptsExhausted joined with the last attempt's error, and on
// cancellation the context error joined likewise.
func Do(ctx context.Context, clk Sleeper, b Backoff, fn func() error) (attempts int, err error) {
	max := b.MaxAttempts
	if max < 1 {
		max = 1
	}
	var last error
	for i := 0; i < max; i++ {
		if d := b.Delay(i); d > 0 {
			if serr := clk.Sleep(ctx, d); serr != nil {
				return i, errors.Join(serr, last)
			}
		} else if cerr := ctx.Err(); cerr != nil {
			return i, errors.Join(cerr, last)
		}
		attempts = i + 1
		last = fn()
		if last == nil {
			return attempts, nil
		}
	}
	return attempts, errors.Join(ErrAttemptsExhausted, last)
}
