package transform

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDCTRoundTripExactOnSmoothBlocks(t *testing.T) {
	var src, coef, rec Block
	for i := range src {
		src[i] = 100 // flat block
	}
	Forward(&src, &coef)
	Inverse(&coef, &rec)
	for i := range src {
		if d := src[i] - rec[i]; d < -1 || d > 1 {
			t.Fatalf("flat block coef %d reconstructed %d, want ~100", i, rec[i])
		}
	}
	// DC coefficient of a flat block of 100s should be 8*100 = 800
	// (with the 1/4 * c(u)c(v) normalisation folded in).
	if coef[0] != 800 {
		t.Fatalf("DC of flat 100 block = %d, want 800", coef[0])
	}
	for i := 1; i < len(coef); i++ {
		if coef[i] != 0 {
			t.Fatalf("AC coefficient %d of flat block = %d, want 0", i, coef[i])
		}
	}
}

func TestDCTRoundTripBoundedError(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		var src, coef, rec Block
		for i := range src {
			src[i] = int32(rng.Intn(511) - 255) // residuals span [-255,255]
		}
		Forward(&src, &coef)
		Inverse(&coef, &rec)
		for i := range src {
			d := src[i] - rec[i]
			if d < -2 || d > 2 {
				t.Fatalf("trial %d: sample %d error %d exceeds ±2", trial, i, d)
			}
		}
	}
}

func TestZigZagPermutationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var src, zz, back Block
		for i := range src {
			src[i] = int32(rng.Intn(2000) - 1000)
		}
		ZigZag(&src, &zz)
		UnZigZag(&zz, &back)
		return src == back
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestZigZagOrderStartsCorrectly(t *testing.T) {
	// Scan must start DC, then (0,1), (1,0), (2,0), (1,1), (0,2)...
	want := []int{0, 1, 8, 16, 9, 2, 3, 10, 17, 24}
	for i, w := range want {
		if ScanIndex(i) != w {
			t.Fatalf("scan[%d] = %d, want %d", i, ScanIndex(i), w)
		}
	}
	// Must be a permutation: all 64 indices visited once.
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		idx := ScanIndex(i)
		if seen[idx] {
			t.Fatalf("scan visits %d twice", idx)
		}
		seen[idx] = true
	}
}

func TestQuantizerQualityMonotonic(t *testing.T) {
	// Higher quality → smaller quantisation steps → less coefficient error.
	rng := rand.New(rand.NewSource(2))
	var src, coef Block
	for i := range src {
		src[i] = int32(rng.Intn(400) - 200)
	}
	Forward(&src, &coef)
	errAt := func(q int) int64 {
		qz := NewQuantizer(q)
		var lev, rec Block
		qz.Quantize(&coef, &lev)
		qz.Dequantize(&lev, &rec)
		var e int64
		for i := range coef {
			d := int64(coef[i] - rec[i])
			e += d * d
		}
		return e
	}
	if !(errAt(90) <= errAt(50) && errAt(50) <= errAt(10)) {
		t.Fatalf("quantisation error not monotone: q90=%d q50=%d q10=%d",
			errAt(90), errAt(50), errAt(10))
	}
}

func TestQuantizeDequantizeSigns(t *testing.T) {
	qz := NewQuantizer(50)
	var src, lev Block
	src[0] = -1000
	src[1] = 1000
	qz.Quantize(&src, &lev)
	if lev[0] >= 0 || lev[1] <= 0 {
		t.Fatalf("sign lost in quantisation: %d %d", lev[0], lev[1])
	}
	// Quantise(x) == -Quantise(-x): symmetric rounding.
	var neg, nlev Block
	for i := range src {
		neg[i] = -src[i]
	}
	qz.Quantize(&neg, &nlev)
	for i := range lev {
		if lev[i] != -nlev[i] {
			t.Fatalf("asymmetric rounding at %d: %d vs %d", i, lev[i], nlev[i])
		}
	}
}

func TestQuantizerClampsQuality(t *testing.T) {
	if NewQuantizer(-5).Quality() != 1 {
		t.Fatal("quality not clamped low")
	}
	if NewQuantizer(500).Quality() != 100 {
		t.Fatal("quality not clamped high")
	}
}

func TestEndToEndBlockPipelinePSNR(t *testing.T) {
	// Full pipeline: DCT → quantise → dequantise → IDCT on natural-ish data.
	rng := rand.New(rand.NewSource(3))
	var worst float64
	for trial := 0; trial < 50; trial++ {
		var src, coef, lev, rec, out Block
		base := int32(rng.Intn(200))
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				// Smooth gradient + small noise, like real image content.
				src[y*8+x] = base + int32(3*x+2*y) + int32(rng.Intn(7)) - 3 - 128
			}
		}
		qz := NewQuantizer(85)
		Forward(&src, &coef)
		qz.Quantize(&coef, &lev)
		qz.Dequantize(&lev, &rec)
		Inverse(&rec, &out)
		var sse float64
		for i := range src {
			d := float64(src[i] - out[i])
			sse += d * d
		}
		if sse > worst {
			worst = sse
		}
	}
	// 64 samples; mean squared error should stay small at q85.
	if worst/64 > 40 {
		t.Fatalf("block MSE %f too high at quality 85", worst/64)
	}
}

func BenchmarkForwardDCT(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	var src, dst Block
	for i := range src {
		src[i] = int32(rng.Intn(256) - 128)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Forward(&src, &dst)
	}
}

func BenchmarkInverseDCT(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	var src, coef, dst Block
	for i := range src {
		src[i] = int32(rng.Intn(256) - 128)
	}
	Forward(&src, &coef)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Inverse(&coef, &dst)
	}
}
