// Package transform implements the 8×8 block transform stage of the SiEVE
// codec: a floating-point DCT-II/DCT-III pair applied through fixed-point
// entry points, JPEG-style quantisation with a quality-scaled matrix, and
// the zig-zag scan that orders coefficients for run-length entropy coding.
package transform

import "math"

// BlockSize is the transform block edge length in pixels.
const BlockSize = 8

// Block is an 8×8 block of spatial samples or transform coefficients in
// row-major order.
type Block [BlockSize * BlockSize]int32

var (
	// cosTable[u][x] = cos((2x+1)uπ/16) * c(u)/2 with c(0)=1/√2, c(u≠0)=1.
	cosTable [BlockSize][BlockSize]float64
	// zigzag[i] is the raster index of the i-th coefficient in scan order.
	zigzag [BlockSize * BlockSize]int
	// unzigzag is the inverse permutation.
	unzigzag [BlockSize * BlockSize]int
)

func init() {
	for u := 0; u < BlockSize; u++ {
		c := 1.0
		if u == 0 {
			c = 1 / math.Sqrt2
		}
		for x := 0; x < BlockSize; x++ {
			cosTable[u][x] = c / 2 * math.Cos(float64(2*x+1)*float64(u)*math.Pi/16)
		}
	}
	// Standard JPEG zig-zag order.
	i := 0
	for s := 0; s < 2*BlockSize-1; s++ {
		if s%2 == 0 { // up-right
			x, y := 0, s
			if y >= BlockSize {
				y = BlockSize - 1
				x = s - y
			}
			for x < BlockSize && y >= 0 {
				zigzag[i] = y*BlockSize + x
				i++
				x++
				y--
			}
		} else { // down-left
			y, x := 0, s
			if x >= BlockSize {
				x = BlockSize - 1
				y = s - x
			}
			for y < BlockSize && x >= 0 {
				zigzag[i] = y*BlockSize + x
				i++
				y++
				x--
			}
		}
	}
	for idx, r := range zigzag {
		unzigzag[r] = idx
	}
}

// Forward applies the 2-D DCT-II to src (spatial samples, typically centred
// around zero by subtracting 128 or a prediction) writing coefficients to dst.
func Forward(src, dst *Block) {
	var tmp [BlockSize * BlockSize]float64
	// Rows.
	for y := 0; y < BlockSize; y++ {
		for u := 0; u < BlockSize; u++ {
			var s float64
			for x := 0; x < BlockSize; x++ {
				s += float64(src[y*BlockSize+x]) * cosTable[u][x]
			}
			tmp[y*BlockSize+u] = s
		}
	}
	// Columns.
	for u := 0; u < BlockSize; u++ {
		for v := 0; v < BlockSize; v++ {
			var s float64
			for y := 0; y < BlockSize; y++ {
				s += tmp[y*BlockSize+u] * cosTable[v][y]
			}
			dst[v*BlockSize+u] = int32(math.RoundToEven(s))
		}
	}
}

// Inverse applies the 2-D DCT-III (inverse DCT), reconstructing spatial
// samples from coefficients.
func Inverse(src, dst *Block) {
	var tmp [BlockSize * BlockSize]float64
	// Columns.
	for u := 0; u < BlockSize; u++ {
		for y := 0; y < BlockSize; y++ {
			var s float64
			for v := 0; v < BlockSize; v++ {
				s += float64(src[v*BlockSize+u]) * cosTable[v][y]
			}
			tmp[y*BlockSize+u] = s
		}
	}
	// Rows.
	for y := 0; y < BlockSize; y++ {
		for x := 0; x < BlockSize; x++ {
			var s float64
			for u := 0; u < BlockSize; u++ {
				s += tmp[y*BlockSize+u] * cosTable[u][x]
			}
			dst[y*BlockSize+x] = int32(math.RoundToEven(s))
		}
	}
}

// baseLumaQuant is the JPEG Annex K luminance quantisation matrix; a proven
// perceptual weighting that our codec reuses for both luma and chroma.
var baseLumaQuant = [BlockSize * BlockSize]int32{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

// Quantizer scales the base matrix by a quality factor and performs
// coefficient quantisation and reconstruction.
type Quantizer struct {
	q    [BlockSize * BlockSize]int32
	qual int
}

// NewQuantizer builds a quantizer for quality in [1,100] using the JPEG
// quality-to-scale mapping (50 = base matrix, higher = finer).
func NewQuantizer(quality int) *Quantizer {
	if quality < 1 {
		quality = 1
	}
	if quality > 100 {
		quality = 100
	}
	var scale int32
	if quality < 50 {
		scale = int32(5000 / quality)
	} else {
		scale = int32(200 - quality*2)
	}
	qz := &Quantizer{qual: quality}
	for i, b := range baseLumaQuant {
		v := (b*scale + 50) / 100
		if v < 1 {
			v = 1
		}
		if v > 255 {
			v = 255
		}
		qz.q[i] = v
	}
	return qz
}

// Quality returns the quality factor the quantizer was built with.
func (qz *Quantizer) Quality() int { return qz.qual }

// Quantize divides coefficients by the scaled matrix with rounding.
func (qz *Quantizer) Quantize(src, dst *Block) {
	for i := range src {
		c := src[i]
		q := qz.q[i]
		if c >= 0 {
			dst[i] = (c + q/2) / q
		} else {
			dst[i] = -((-c + q/2) / q)
		}
	}
}

// Dequantize multiplies quantised levels back to coefficient scale.
func (qz *Quantizer) Dequantize(src, dst *Block) {
	for i := range src {
		dst[i] = src[i] * qz.q[i]
	}
}

// ZigZag reorders a raster block into scan order.
func ZigZag(src, dst *Block) {
	for i, r := range zigzag {
		dst[i] = src[r]
	}
}

// UnZigZag restores raster order from scan order.
func UnZigZag(src, dst *Block) {
	for i, r := range zigzag {
		dst[r] = src[i]
	}
}

// ScanIndex returns the raster index of scan position i (for tests).
func ScanIndex(i int) int { return zigzag[i] }
