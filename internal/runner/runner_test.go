package runner

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapKeepsInputOrder(t *testing.T) {
	p := New(8)
	out, err := Map(context.Background(), p, 100, func(_ context.Context, i int) (int, error) {
		if i%7 == 0 {
			time.Sleep(time.Millisecond) // shuffle completion order
		}
		return i * 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 100 {
		t.Fatalf("len = %d", len(out))
	}
	for i, v := range out {
		if v != i*2 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*2)
		}
	}
}

func TestMapRespectsBound(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	p := New(workers)
	_, err := Map(context.Background(), p, 50, func(_ context.Context, i int) (struct{}, error) {
		cur := inFlight.Add(1)
		for {
			old := peak.Load()
			if cur <= old || peak.CompareAndSwap(old, cur) {
				break
			}
		}
		time.Sleep(200 * time.Microsecond)
		inFlight.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > workers {
		t.Fatalf("peak concurrency %d exceeds bound %d", got, workers)
	}
}

func TestMapFirstErrorCancelsRest(t *testing.T) {
	boom := errors.New("boom")
	var cancelled atomic.Int64
	var started atomic.Int64
	release := make(chan struct{})
	p := New(4)
	_, err := Map(context.Background(), p, 32, func(ctx context.Context, i int) (int, error) {
		started.Add(1)
		if i == 2 {
			close(release) // let the blocked tasks observe cancellation
			return 0, fmt.Errorf("task %d: %w", i, boom)
		}
		select {
		case <-ctx.Done():
			cancelled.Add(1)
			return 0, ctx.Err()
		case <-release:
			// The failing task has fired; wait for our cancellation.
			<-ctx.Done()
			cancelled.Add(1)
			return 0, ctx.Err()
		}
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped %v", err, boom)
	}
	if cancelled.Load() == 0 {
		t.Fatal("no concurrent task observed cancellation")
	}
	// Far fewer tasks than 32 should have started: cancellation stops claims.
	if started.Load() > 8 {
		t.Fatalf("%d tasks started after failure; claiming should stop", started.Load())
	}
}

func TestMapReportsRootCauseNotCancellation(t *testing.T) {
	// The failing task's error is reported even when lower-index tasks
	// subsequently return the cancellation they observed.
	boom := errors.New("root cause")
	var wg sync.WaitGroup
	wg.Add(2)
	p := New(2)
	_, err := Map(context.Background(), p, 2, func(ctx context.Context, i int) (int, error) {
		wg.Done()
		wg.Wait() // both running before either returns
		if i == 1 {
			return 0, boom
		}
		<-ctx.Done() // task 0 outlives the failure and reports cancellation
		return 0, ctx.Err()
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want root cause %v", err, boom)
	}
}

func TestMapParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	p := New(2)
	done := make(chan error, 1)
	go func() {
		_, err := Map(ctx, p, 1000, func(ctx context.Context, i int) (int, error) {
			ran.Add(1)
			select {
			case <-ctx.Done():
			case <-time.After(50 * time.Microsecond):
			}
			return i, nil
		})
		done <- err
	}()
	time.Sleep(2 * time.Millisecond)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n == 1000 {
		t.Fatal("cancellation did not stop the run early")
	}
}

func TestMapSequentialFastPath(t *testing.T) {
	// One worker must execute strictly in order with no goroutines.
	var order []int
	out, err := Map(context.Background(), Sequential(), 10, func(_ context.Context, i int) (int, error) {
		order = append(order, i) // safe: sequential path is single-threaded
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range order {
		if order[i] != i || out[i] != i {
			t.Fatalf("sequential order broken at %d: %v", i, order)
		}
	}
}

func TestMapEdgeCases(t *testing.T) {
	p := New(4)
	if out, err := Map(context.Background(), p, 0, func(_ context.Context, i int) (int, error) { return i, nil }); err != nil || len(out) != 0 {
		t.Fatalf("n=0: out=%v err=%v", out, err)
	}
	if _, err := Map(context.Background(), p, -1, func(_ context.Context, i int) (int, error) { return i, nil }); err == nil {
		t.Fatal("negative n accepted")
	}
	if _, err := Map[int](context.Background(), p, 3, nil); err == nil {
		t.Fatal("nil fn accepted")
	}
	// nil context and nil pool both work.
	var nilPool *Pool
	out, err := Map(nil, nilPool, 3, func(_ context.Context, i int) (int, error) { return i + 1, nil }) //nolint:staticcheck
	if err != nil || len(out) != 3 || out[2] != 3 {
		t.Fatalf("nil ctx/pool: out=%v err=%v", out, err)
	}
}

func TestWorkers(t *testing.T) {
	if New(5).Workers() != 5 {
		t.Fatal("explicit worker count not respected")
	}
	if New(0).Workers() < 1 || (*Pool)(nil).Workers() < 1 {
		t.Fatal("defaulted worker count must be positive")
	}
	if Sequential().Workers() != 1 {
		t.Fatal("Sequential should bound to one worker")
	}
}

func TestMapSlice(t *testing.T) {
	items := []string{"a", "bb", "ccc"}
	out, err := MapSlice(context.Background(), New(2), items, func(_ context.Context, s string) (int, error) {
		return len(s), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 || out[1] != 2 || out[2] != 3 {
		t.Fatalf("out = %v", out)
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	if err := ForEach(context.Background(), New(4), 10, func(_ context.Context, i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 45 {
		t.Fatalf("sum = %d", sum.Load())
	}
	boom := errors.New("boom")
	if err := ForEach(context.Background(), New(4), 10, func(_ context.Context, i int) error {
		if i == 3 {
			return boom
		}
		return nil
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

// BenchmarkMapOverhead measures the pool's fixed cost per fan-out with
// trivial tasks — the price every parallelised loop pays up front.
func BenchmarkMapOverhead(b *testing.B) {
	p := New(4)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Map(ctx, p, 64, func(_ context.Context, j int) (int, error) {
			return j, nil
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestNestedFanOut(t *testing.T) {
	// A task may fan out through the same pool without deadlock.
	p := New(2)
	out, err := Map(context.Background(), p, 4, func(ctx context.Context, i int) (int, error) {
		inner, err := Map(ctx, p, 4, func(_ context.Context, j int) (int, error) {
			return i * j, nil
		})
		if err != nil {
			return 0, err
		}
		total := 0
		for _, v := range inner {
			total += v
		}
		return total, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*6 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*6)
		}
	}
}
