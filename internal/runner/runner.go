// Package runner provides the bounded worker pool behind every fan-out in
// this repository: asset preparation, parameter sweeps, and the methods ×
// workloads evaluation grid all funnel through it. The pool guarantees
//
//   - bounded parallelism: at most Workers tasks run at once;
//   - first-error cancellation: one failing task cancels the context seen
//     by every task that has not finished, and no new tasks start;
//   - index-stable collection: Map's result slice is ordered by task
//     index, never by completion order, so parallel runs render exactly
//     like sequential ones.
//
// A Pool carries no shared state — it is a concurrency *bound*, not a
// semaphore. Each Map call spawns its own worker set, so a task may itself
// fan out through the same Pool without risk of deadlock (the bounds
// multiply instead).
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool bounds the parallelism of Map/MapSlice/ForEach calls. A nil *Pool
// and the zero Pool are both valid and run with GOMAXPROCS workers.
type Pool struct {
	workers int
}

// New returns a pool running at most n tasks concurrently per fan-out call.
// n <= 0 selects runtime.GOMAXPROCS(0).
func New(n int) *Pool {
	if n < 0 {
		n = 0
	}
	return &Pool{workers: n}
}

// Sequential returns a one-worker pool: fan-outs degrade to plain loops
// with the exact scheduling of the pre-pool code.
func Sequential() *Pool { return New(1) }

// Workers reports the pool's concurrency bound.
func (p *Pool) Workers() int {
	if p == nil || p.workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p.workers
}

// Map runs fn(ctx, i) for every i in [0, n) with at most p.Workers() tasks
// in flight and returns the results indexed by i. The first task error
// cancels the context passed to the remaining tasks and no new tasks start;
// Map returns that first error (later errors — typically the cancellation
// surfacing through still-running tasks — are dropped). If the parent
// context is cancelled mid-run, Map returns its error.
func Map[T any](ctx context.Context, p *Pool, n int, fn func(context.Context, int) (T, error)) ([]T, error) {
	if fn == nil {
		return nil, fmt.Errorf("runner: nil task function")
	}
	if n < 0 {
		return nil, fmt.Errorf("runner: negative task count %d", n)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	workers := p.Workers()
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Sequential fast path: no goroutines, deterministic scheduling.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, err := fn(ctx, i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     atomic.Int64 // next task index to claim
		done     atomic.Int64 // tasks completed successfully
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				v, err := fn(ctx, i)
				if err != nil {
					fail(err)
					return
				}
				out[i] = v
				done.Add(1)
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err != nil {
		return nil, err
	}
	// Every task completed: success, even if the parent was cancelled in
	// the instant after the last task returned (the sequential path behaves
	// the same way, so the outcome cannot depend on pool size).
	if int(done.Load()) == n {
		return out, nil
	}
	// Otherwise some indices were skipped — only parent cancellation can
	// cause that without a task error, so surface it.
	if err := parent.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// MapSlice runs fn over every element of items and returns the results in
// input order. See Map for the concurrency and error semantics.
func MapSlice[S, T any](ctx context.Context, p *Pool, items []S, fn func(context.Context, S) (T, error)) ([]T, error) {
	return Map(ctx, p, len(items), func(ctx context.Context, i int) (T, error) {
		return fn(ctx, items[i])
	})
}

// ForEach runs fn(ctx, i) for every i in [0, n) with Map's concurrency and
// error semantics, discarding results.
func ForEach(ctx context.Context, p *Pool, n int, fn func(context.Context, int) error) error {
	_, err := Map(ctx, p, n, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, fn(ctx, i)
	})
	return err
}
