package codec

import (
	"testing"

	"sieve/internal/frame"
)

// The codec's steady-state hot path must not allocate: on a 1-core edge box
// wall-clock benchmarks are too noisy to gate on, but allocs/op is exact and
// deterministic, so these tests are the enforceable form of "the hot path
// got faster and stays that way". Warm-up calls let one-time buffers
// (bitstream writer capacity, analyzer half-res planes, ef.Data) reach their
// steady-state capacity first.

func TestEncodeIntoSteadyStateZeroAlloc(t *testing.T) {
	p := Params{Width: 64, Height: 48, Quality: 85, GOPSize: 1 << 20, Scenecut: 0}
	frames := testVideo(64, 48, 4, 1, 21)
	enc, err := NewEncoder(p)
	if err != nil {
		t.Fatal(err)
	}
	var ef EncodedFrame
	for _, f := range frames {
		if err := enc.EncodeInto(f, &ef); err != nil {
			t.Fatal(err)
		}
		if ef.Type != FrameI && ef.Type != FrameP {
			t.Fatalf("unexpected frame type %v", ef.Type)
		}
	}
	f := frames[len(frames)-1]
	allocs := testing.AllocsPerRun(50, func() {
		if err := enc.EncodeInto(f, &ef); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state P-frame EncodeInto: %.1f allocs/op, want 0", allocs)
	}
}

func TestDecodeIntoSteadyStateZeroAlloc(t *testing.T) {
	p := Params{Width: 64, Height: 48, Quality: 85, GOPSize: 1 << 20, Scenecut: 0}
	frames := testVideo(64, 48, 3, 1, 22)
	encoded := encodeAll(t, p, frames)
	if encoded[2].Type != FrameP {
		t.Fatalf("frame 2 is %v, want P", encoded[2].Type)
	}
	dec, err := NewDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	out := frame.NewYUV(64, 48)
	for _, ef := range encoded {
		if err := dec.DecodeInto(ef.Data, out); err != nil {
			t.Fatal(err)
		}
	}
	// Re-decoding the same P payload against the rolling reference is not a
	// valid stream, but it exercises exactly the steady-state work profile.
	data := encoded[2].Data
	allocs := testing.AllocsPerRun(50, func() {
		if err := dec.DecodeInto(data, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state P-frame DecodeInto: %.1f allocs/op, want 0", allocs)
	}
}

func TestAnalyzeSteadyStateZeroAlloc(t *testing.T) {
	frames := testVideo(64, 48, 3, 1, 23)
	an := NewCostAnalyzer()
	for _, f := range frames {
		an.Analyze(f)
	}
	f := frames[len(frames)-1]
	allocs := testing.AllocsPerRun(50, func() {
		an.Analyze(f)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Analyze: %.1f allocs/op, want 0", allocs)
	}
}

// TestDecodeIntoMatchesDecode pins the wrapper equivalence: DecodeInto into
// a reused frame yields exactly what the allocating Decode returns, and a
// caller mutating the output frame between calls cannot corrupt the
// decoder's reference state.
func TestDecodeIntoMatchesDecode(t *testing.T) {
	p := Params{Width: 64, Height: 48, Quality: 85, GOPSize: 6, Scenecut: 120}
	frames := testVideo(64, 48, 14, 4, 24)
	encoded := encodeAll(t, p, frames)

	ref, err := NewDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	into, err := NewDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	out := frame.NewYUV(64, 48)
	for i, ef := range encoded {
		want, err := ref.Decode(ef.Data)
		if err != nil {
			t.Fatalf("Decode %d: %v", i, err)
		}
		if err := into.DecodeInto(ef.Data, out); err != nil {
			t.Fatalf("DecodeInto %d: %v", i, err)
		}
		if !out.Equal(want) {
			t.Fatalf("frame %d: DecodeInto differs from Decode", i)
		}
		// Scribble over the caller-owned frame; the decoder must not care.
		out.Fill(0, 0, 0)
	}
}

func TestDecodeIntoRejectsBadGeometry(t *testing.T) {
	p := Params{Width: 64, Height: 48, GOPSize: 10, Scenecut: 0}
	frames := testVideo(64, 48, 1, 0, 25)
	encoded := encodeAll(t, p, frames)
	dec, err := NewDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := dec.DecodeInto(encoded[0].Data, frame.NewYUV(32, 32)); err == nil {
		t.Fatal("mismatched output geometry should fail")
	}
	if err := dec.DecodeInto(encoded[0].Data, nil); err == nil {
		t.Fatal("nil output frame should fail")
	}
}

// TestDecodeIntoCorruptKeepsReference verifies the swap-on-success rule: a
// failed decode leaves the previous reference intact, so the stream can
// continue from the next good payload.
func TestDecodeIntoCorruptKeepsReference(t *testing.T) {
	p := Params{Width: 64, Height: 48, Quality: 85, GOPSize: 1 << 20, Scenecut: 0}
	frames := testVideo(64, 48, 4, 1, 26)
	encoded := encodeAll(t, p, frames)

	ref, err := NewDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	out := frame.NewYUV(64, 48)
	want := frame.NewYUV(64, 48)
	for i := 0; i < 2; i++ {
		if err := ref.DecodeInto(encoded[i].Data, want); err != nil {
			t.Fatal(err)
		}
		if err := dec.DecodeInto(encoded[i].Data, out); err != nil {
			t.Fatal(err)
		}
	}
	// A truncated P-frame payload must fail without advancing the reference.
	bad := encoded[2].Data[:1]
	if err := dec.DecodeInto(bad, out); err == nil {
		t.Fatal("truncated payload should fail")
	}
	// Frames 2 and 3 must still decode identically to the clean decoder.
	for i := 2; i < 4; i++ {
		if err := ref.DecodeInto(encoded[i].Data, want); err != nil {
			t.Fatal(err)
		}
		if err := dec.DecodeInto(encoded[i].Data, out); err != nil {
			t.Fatalf("decode %d after corrupt payload: %v", i, err)
		}
		if !out.Equal(want) {
			t.Fatalf("frame %d differs after mid-stream corrupt payload", i)
		}
	}
}

// TestIFrameDecoderMatchesDecodeIFrame pins the reused-buffer I-frame
// decoder (the session detection path) against the allocating one-shot
// DecodeIFrame, and its steady-state zero-alloc contract.
func TestIFrameDecoderMatchesDecodeIFrame(t *testing.T) {
	p := Params{Width: 64, Height: 48, Quality: 85, GOPSize: 2, Scenecut: 0}
	frames := testVideo(64, 48, 6, 1, 27)
	encoded := encodeAll(t, p, frames)

	d, err := NewIFrameDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	var lastI []byte
	for _, ef := range encoded {
		if ef.Type != FrameI {
			// P payloads must be rejected without touching state.
			if _, err := d.Decode(ef.Data); err != ErrNotIFrame {
				t.Fatalf("P payload: err = %v, want ErrNotIFrame", err)
			}
			continue
		}
		lastI = ef.Data
		want, err := DecodeIFrame(p, ef.Data)
		if err != nil {
			t.Fatal(err)
		}
		got, err := d.Decode(ef.Data)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("frame %d: reused-buffer decode differs from DecodeIFrame", ef.Number)
		}
	}
	if lastI == nil {
		t.Fatal("no I-frames in test stream")
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := d.Decode(lastI); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state IFrameDecoder.Decode: %.1f allocs/op, want 0", allocs)
	}
}
