package codec

import (
	"fmt"

	"sieve/internal/bitstream"
	"sieve/internal/frame"
	"sieve/internal/transform"
)

// Decoder decompresses a stream produced by Encoder with the same Params.
// Not safe for concurrent use.
type Decoder struct {
	p     Params
	recon *frame.YUV
	bd    *blockDecoder
}

// NewDecoder validates p and returns a ready decoder.
func NewDecoder(p Params) (*Decoder, error) {
	if err := p.normalize(); err != nil {
		return nil, err
	}
	return &Decoder{p: p}, nil
}

// Decode decompresses the next frame in stream order. P-frames require that
// the preceding frame was decoded by this Decoder.
func (d *Decoder) Decode(data []byte) (*frame.YUV, error) {
	ft, quality, r, err := readFrameHeader(data)
	if err != nil {
		return nil, err
	}
	if d.bd == nil || d.bd.qz.Quality() != quality {
		d.bd = newBlockDecoder(quality)
	}
	switch ft {
	case FrameI:
		out := frame.NewYUV(d.p.Width, d.p.Height)
		if err := decodeIntraInto(r, d.bd, out); err != nil {
			return nil, err
		}
		d.recon = out
		return out.Clone(), nil
	case FrameP:
		if d.recon == nil {
			return nil, ErrNoRef
		}
		out, err := d.decodeInter(r)
		if err != nil {
			return nil, err
		}
		d.recon = out
		return out.Clone(), nil
	default:
		return nil, fmt.Errorf("%w: frame type %d", ErrCorrupt, ft)
	}
}

// Reset drops the reference frame (e.g. before seeking to an I-frame).
func (d *Decoder) Reset() { d.recon = nil }

// DecodeIFrame decodes a single I-frame payload independently of any stream
// state — the "decompress like a still JPEG" path the SiEVE edge engine uses
// after the I-frame seeker. Returns ErrNotIFrame for P-frame payloads.
func DecodeIFrame(p Params, data []byte) (*frame.YUV, error) {
	if err := p.normalize(); err != nil {
		return nil, err
	}
	ft, quality, r, err := readFrameHeader(data)
	if err != nil {
		return nil, err
	}
	if ft != FrameI {
		return nil, ErrNotIFrame
	}
	out := frame.NewYUV(p.Width, p.Height)
	if err := decodeIntraInto(r, newBlockDecoder(quality), out); err != nil {
		return nil, err
	}
	return out, nil
}

// PayloadFrameType peeks at a payload's frame-type bit without decoding.
func PayloadFrameType(data []byte) (FrameType, error) {
	if len(data) == 0 {
		return 0, fmt.Errorf("%w: empty payload", ErrCorrupt)
	}
	return FrameType(data[0] >> 7), nil
}

func readFrameHeader(data []byte) (FrameType, int, *bitstream.Reader, error) {
	if len(data) < 1 {
		return 0, 0, nil, fmt.Errorf("%w: empty payload", ErrCorrupt)
	}
	r := bitstream.NewReader(data)
	ftBit, err := r.ReadBits(1)
	if err != nil {
		return 0, 0, nil, err
	}
	q, err := r.ReadBits(7)
	if err != nil {
		return 0, 0, nil, err
	}
	if q < 1 || q > 100 {
		return 0, 0, nil, fmt.Errorf("%w: quality %d", ErrCorrupt, q)
	}
	return FrameType(ftBit), int(q), r, nil
}

func decodeIntraInto(r *bitstream.Reader, bd *blockDecoder, out *frame.YUV) error {
	for _, pl := range []*frame.Plane{out.Y, out.Cb, out.Cr} {
		bd.resetDC()
		for by := 0; by < pl.H; by += transform.BlockSize {
			for bx := 0; bx < pl.W; bx += transform.BlockSize {
				if err := bd.decodeBlock(r, pl, bx, by, constPred); err != nil {
					return fmt.Errorf("intra block (%d,%d): %w", bx, by, err)
				}
			}
		}
	}
	return nil
}

func (d *Decoder) decodeInter(r *bitstream.Reader) (*frame.YUV, error) {
	prev := d.recon
	out := frame.NewYUV(d.p.Width, d.p.Height)
	dcY, dcCb, dcCr := int32(0), int32(0), int32(0)
	pred := MV{}
	for mby := 0; mby < d.p.Height; mby += mbSize {
		pred = MV{}
		for mbx := 0; mbx < d.p.Width; mbx += mbSize {
			skip, err := r.ReadBit()
			if err != nil {
				return nil, fmt.Errorf("mb (%d,%d) skip flag: %w", mbx, mby, err)
			}
			if skip == 1 {
				copyBlock(out.Y, prev.Y, mbx, mby, mbSize, MV{})
				copyBlock(out.Cb, prev.Cb, mbx/2, mby/2, mbSize/2, MV{})
				copyBlock(out.Cr, prev.Cr, mbx/2, mby/2, mbSize/2, MV{})
				pred = MV{}
				continue
			}
			dx, err := r.ReadSE()
			if err != nil {
				return nil, fmt.Errorf("mb (%d,%d) mv.x: %w", mbx, mby, err)
			}
			dy, err := r.ReadSE()
			if err != nil {
				return nil, fmt.Errorf("mb (%d,%d) mv.y: %w", mbx, mby, err)
			}
			mv := MV{pred.X + int(dx), pred.Y + int(dy)}
			pred = mv

			d.bd.dcPred = dcY
			for sub := 0; sub < 4; sub++ {
				bx := mbx + (sub%2)*transform.BlockSize
				by := mby + (sub/2)*transform.BlockSize
				if err := d.bd.decodeBlock(r, out.Y, bx, by, mcPred(prev.Y, bx, by, mv)); err != nil {
					return nil, fmt.Errorf("mb (%d,%d) luma: %w", mbx, mby, err)
				}
			}
			dcY = d.bd.dcPred
			cmv := MV{mv.X / 2, mv.Y / 2}
			cbx, cby := mbx/2, mby/2
			d.bd.dcPred = dcCb
			if err := d.bd.decodeBlock(r, out.Cb, cbx, cby, mcPred(prev.Cb, cbx, cby, cmv)); err != nil {
				return nil, fmt.Errorf("mb (%d,%d) cb: %w", mbx, mby, err)
			}
			dcCb = d.bd.dcPred
			d.bd.dcPred = dcCr
			if err := d.bd.decodeBlock(r, out.Cr, cbx, cby, mcPred(prev.Cr, cbx, cby, cmv)); err != nil {
				return nil, fmt.Errorf("mb (%d,%d) cr: %w", mbx, mby, err)
			}
			dcCr = d.bd.dcPred
		}
	}
	return out, nil
}
