package codec

import (
	"fmt"

	"sieve/internal/bitstream"
	"sieve/internal/frame"
	"sieve/internal/transform"
)

// Decoder decompresses a stream produced by Encoder with the same Params.
// Not safe for concurrent use.
//
// Like the encoder, the decoder owns two reference frames and ping-pongs
// between them: every frame is decoded into the scratch buffer first and the
// pointers swap only on success, so a corrupt payload never damages the
// reference and a P-frame retry against the same reference stays possible.
type Decoder struct {
	p       Params
	recon   *frame.YUV // reconstruction of the last successfully decoded frame
	scratch *frame.YUV // decode target; swapped with recon on success
	hasRef  bool
	bd      *blockDecoder
	r       bitstream.Reader // reused per frame to keep DecodeInto allocation-free
}

// NewDecoder validates p and returns a ready decoder.
func NewDecoder(p Params) (*Decoder, error) {
	if err := p.normalize(); err != nil {
		return nil, err
	}
	return &Decoder{
		p:       p,
		recon:   frame.NewYUV(p.Width, p.Height),
		scratch: frame.NewYUV(p.Width, p.Height),
	}, nil
}

// Decode decompresses the next frame in stream order. P-frames require that
// the preceding frame was decoded by this Decoder. The returned frame is
// freshly allocated and owned by the caller; the allocation-free hot path
// is DecodeInto.
func (d *Decoder) Decode(data []byte) (*frame.YUV, error) {
	out := frame.NewYUV(d.p.Width, d.p.Height)
	if err := d.DecodeInto(data, out); err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeInto decompresses the next frame in stream order into out, which
// must have the stream geometry. In steady state it performs zero heap
// allocations: the frame is reconstructed in the decoder's own reference
// buffers and copied once into out. out never aliases decoder state, so the
// caller may freely reuse or mutate it between calls; mutating out does not
// perturb subsequent P-frame decoding.
//
//sieve:noalloc steady-state P-frame path pinned to 0 allocs/op by alloc_test.go
func (d *Decoder) DecodeInto(data []byte, out *frame.YUV) error {
	if out == nil {
		return fmt.Errorf("codec: DecodeInto nil output frame")
	}
	if out.W != d.p.Width || out.H != d.p.Height {
		return fmt.Errorf("codec: output frame %dx%d does not match stream %dx%d",
			out.W, out.H, d.p.Width, d.p.Height)
	}
	ft, quality, err := readFrameHeader(&d.r, data)
	if err != nil {
		return err
	}
	if d.bd == nil || d.bd.qz.Quality() != quality {
		d.bd = newBlockDecoder(quality)
	}
	switch ft {
	case FrameI:
		if err := decodeIntraInto(&d.r, d.bd, d.scratch); err != nil {
			return err
		}
	case FrameP:
		if !d.hasRef {
			return ErrNoRef
		}
		if err := d.decodeInterInto(&d.r, d.recon, d.scratch); err != nil {
			return err
		}
	default:
		return fmt.Errorf("%w: frame type %d", ErrCorrupt, ft)
	}
	d.recon, d.scratch = d.scratch, d.recon
	d.hasRef = true
	out.Y.CopyFrom(d.recon.Y)
	out.Cb.CopyFrom(d.recon.Cb)
	out.Cr.CopyFrom(d.recon.Cr)
	return nil
}

// Reset drops the reference frame (e.g. before seeking to an I-frame).
func (d *Decoder) Reset() { d.hasRef = false }

// DecodeIFrame decodes a single I-frame payload independently of any stream
// state — the "decompress like a still JPEG" path the SiEVE edge engine uses
// after the I-frame seeker. Returns ErrNotIFrame for P-frame payloads.
func DecodeIFrame(p Params, data []byte) (*frame.YUV, error) {
	if err := p.normalize(); err != nil {
		return nil, err
	}
	var r bitstream.Reader
	ft, quality, err := readFrameHeader(&r, data)
	if err != nil {
		return nil, err
	}
	if ft != FrameI {
		return nil, ErrNotIFrame
	}
	out := frame.NewYUV(p.Width, p.Height)
	if err := decodeIntraInto(&r, newBlockDecoder(quality), out); err != nil {
		return nil, err
	}
	return out, nil
}

// IFrameDecoder decodes independent I-frame payloads like DecodeIFrame but
// with reused buffers: the output frame, block decoder and bitstream reader
// all persist across calls, so the steady-state decode of a session's own
// I-frames allocates nothing. Not safe for concurrent use.
type IFrameDecoder struct {
	p   Params
	r   bitstream.Reader
	bd  *blockDecoder
	out *frame.YUV
}

// NewIFrameDecoder validates p and returns a ready decoder.
func NewIFrameDecoder(p Params) (*IFrameDecoder, error) {
	if err := p.normalize(); err != nil {
		return nil, err
	}
	return &IFrameDecoder{p: p, out: frame.NewYUV(p.Width, p.Height)}, nil
}

// Decode decodes one I-frame payload into the decoder's internal frame and
// returns it. The frame is valid until the next Decode call; callers that
// need to keep it must Clone. Returns ErrNotIFrame for P-frame payloads.
func (d *IFrameDecoder) Decode(data []byte) (*frame.YUV, error) {
	ft, quality, err := readFrameHeader(&d.r, data)
	if err != nil {
		return nil, err
	}
	if ft != FrameI {
		return nil, ErrNotIFrame
	}
	if d.bd == nil || d.bd.qz.Quality() != quality {
		d.bd = newBlockDecoder(quality)
	}
	if err := decodeIntraInto(&d.r, d.bd, d.out); err != nil {
		return nil, err
	}
	return d.out, nil
}

// PayloadFrameType peeks at a payload's frame-type bit without decoding.
func PayloadFrameType(data []byte) (FrameType, error) {
	if len(data) == 0 {
		return 0, fmt.Errorf("%w: empty payload", ErrCorrupt)
	}
	return FrameType(data[0] >> 7), nil
}

// readFrameHeader rewinds r onto data and consumes the one-byte header.
//
//sieve:noalloc leaf of the decode hot path
func readFrameHeader(r *bitstream.Reader, data []byte) (FrameType, int, error) {
	if len(data) < 1 {
		return 0, 0, fmt.Errorf("%w: empty payload", ErrCorrupt)
	}
	r.Reset(data)
	ftBit, err := r.ReadBits(1)
	if err != nil {
		return 0, 0, err
	}
	q, err := r.ReadBits(7)
	if err != nil {
		return 0, 0, err
	}
	if q < 1 || q > 100 {
		return 0, 0, fmt.Errorf("%w: quality %d", ErrCorrupt, q)
	}
	return FrameType(ftBit), int(q), nil
}

//sieve:noalloc leaf of the decode hot path
func decodeIntraInto(r *bitstream.Reader, bd *blockDecoder, out *frame.YUV) error {
	fillPredConst(&bd.pred)
	for _, pl := range [3]*frame.Plane{out.Y, out.Cb, out.Cr} {
		bd.resetDC()
		for by := 0; by < pl.H; by += transform.BlockSize {
			for bx := 0; bx < pl.W; bx += transform.BlockSize {
				if err := bd.decodeBlock(r, pl, bx, by); err != nil {
					return fmt.Errorf("intra block (%d,%d): %w", bx, by, err)
				}
			}
		}
	}
	return nil
}

// decodeInterInto decodes one P-frame payload, predicting from prev and
// writing the reconstruction into dst (every plane pixel is written).
//
//sieve:noalloc leaf of the decode hot path
func (d *Decoder) decodeInterInto(r *bitstream.Reader, prev, dst *frame.YUV) error {
	dcY, dcCb, dcCr := int32(0), int32(0), int32(0)
	pred := MV{}
	for mby := 0; mby < d.p.Height; mby += mbSize {
		pred = MV{}
		for mbx := 0; mbx < d.p.Width; mbx += mbSize {
			skip, err := r.ReadBit()
			if err != nil {
				return fmt.Errorf("mb (%d,%d) skip flag: %w", mbx, mby, err)
			}
			if skip == 1 {
				copyBlock(dst.Y, prev.Y, mbx, mby, mbSize, MV{})
				copyBlock(dst.Cb, prev.Cb, mbx/2, mby/2, mbSize/2, MV{})
				copyBlock(dst.Cr, prev.Cr, mbx/2, mby/2, mbSize/2, MV{})
				pred = MV{}
				continue
			}
			dx, err := r.ReadSE()
			if err != nil {
				return fmt.Errorf("mb (%d,%d) mv.x: %w", mbx, mby, err)
			}
			dy, err := r.ReadSE()
			if err != nil {
				return fmt.Errorf("mb (%d,%d) mv.y: %w", mbx, mby, err)
			}
			mv := MV{pred.X + int(dx), pred.Y + int(dy)}
			pred = mv

			d.bd.dcPred = dcY
			for sub := 0; sub < 4; sub++ {
				bx := mbx + (sub%2)*transform.BlockSize
				by := mby + (sub/2)*transform.BlockSize
				fillPredMC(&d.bd.pred, prev.Y, bx, by, mv)
				if err := d.bd.decodeBlock(r, dst.Y, bx, by); err != nil {
					return fmt.Errorf("mb (%d,%d) luma: %w", mbx, mby, err)
				}
			}
			dcY = d.bd.dcPred
			cmv := MV{mv.X / 2, mv.Y / 2}
			cbx, cby := mbx/2, mby/2
			d.bd.dcPred = dcCb
			fillPredMC(&d.bd.pred, prev.Cb, cbx, cby, cmv)
			if err := d.bd.decodeBlock(r, dst.Cb, cbx, cby); err != nil {
				return fmt.Errorf("mb (%d,%d) cb: %w", mbx, mby, err)
			}
			dcCb = d.bd.dcPred
			d.bd.dcPred = dcCr
			fillPredMC(&d.bd.pred, prev.Cr, cbx, cby, cmv)
			if err := d.bd.decodeBlock(r, dst.Cr, cbx, cby); err != nil {
				return fmt.Errorf("mb (%d,%d) cr: %w", mbx, mby, err)
			}
			dcCr = d.bd.dcPred
		}
	}
	return nil
}
