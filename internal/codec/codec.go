// Package codec implements the SiEVE hybrid video codec: a block-based
// encoder/decoder in the style of H.264 baseline, with intra-coded I-frames
// (JPEG-like: 8×8 DCT + quantisation + Exp-Golomb run-level entropy coding)
// and motion-compensated P-frames (diamond-search motion estimation over
// 16×16 macroblocks, coded residuals, skip mode).
//
// The encoder exposes the two knobs the SiEVE paper tunes:
//
//   - Scenecut threshold (0–400, x264 convention): a frame becomes an
//     I-frame when its motion-compensated inter cost approaches its intra
//     cost — i.e. when prediction from the previous frame stops paying off,
//     which is exactly when new content (an object) enters the scene.
//     Higher values make the encoder more sensitive to small motion.
//   - GOP size: the maximum number of frames between two I-frames.
//
// The scenecut decision runs on half-resolution *original* frames (like
// x264's lookahead), which makes it independent of where previous I-frames
// landed. The offline tuner exploits this to replay I-frame placement for
// many parameter configurations from a single analysis pass.
package codec

import (
	"errors"
	"fmt"
	"math"
)

// FrameType distinguishes intra-coded key frames from predicted frames.
type FrameType uint8

const (
	// FrameI is an intra-coded key frame, decodable independently.
	FrameI FrameType = iota
	// FrameP is an inter-coded frame predicted from the previous frame.
	FrameP
)

// String returns "I" or "P".
func (t FrameType) String() string {
	switch t {
	case FrameI:
		return "I"
	case FrameP:
		return "P"
	default:
		return fmt.Sprintf("FrameType(%d)", uint8(t))
	}
}

// MaxScenecut is the largest meaningful scenecut threshold (x264 convention;
// at 400 every frame with any motion becomes an I-frame).
const MaxScenecut = 400

// MotionSearch selects the motion-estimation algorithm.
type MotionSearch uint8

const (
	// SearchDiamond is the default two-stage diamond search.
	SearchDiamond MotionSearch = iota
	// SearchFull is exhaustive search inside the range (ablation/reference).
	SearchFull
)

// Params configures an encoder/decoder pair. Width and Height must be even
// and positive; the macroblock grid internally extends past non-multiple-of-16
// edges with border replication.
type Params struct {
	Width, Height int
	// Quality is the quantiser quality in [1,100]; 85 is visually clean.
	Quality int
	// GOPSize forces an I-frame whenever this many frames have elapsed
	// since the last one. Must be >= 1.
	GOPSize int
	// Scenecut in [0,400]; 0 disables scenecut detection entirely.
	Scenecut float64
	// MinGOP suppresses scenecut I-frames closer than this to the previous
	// I-frame (x264 min-keyint). 0 or 1 means no suppression.
	MinGOP int
	// SearchRange is the motion search radius in pixels (default 16).
	SearchRange int
	// Search selects the ME algorithm (default diamond).
	Search MotionSearch
	// SkipSAD is the macroblock SAD below which a zero-motion macroblock
	// is coded as a skip (default 512 ≈ 2 grey levels per pixel).
	SkipSAD int
}

// Defaults returns params mirroring the paper's "default encoding":
// scenecut 40, GOP 250 (the x264 defaults called out in Section IV).
func Defaults(w, h int) Params {
	return Params{
		Width:    w,
		Height:   h,
		Quality:  85,
		GOPSize:  250,
		Scenecut: 40,
	}
}

// normalize fills zero-valued optional fields and validates the rest.
func (p *Params) normalize() error {
	if p.Width <= 0 || p.Height <= 0 {
		return fmt.Errorf("codec: invalid dimensions %dx%d", p.Width, p.Height)
	}
	if p.Width%2 != 0 || p.Height%2 != 0 {
		return fmt.Errorf("codec: dimensions %dx%d must be even", p.Width, p.Height)
	}
	if p.Quality == 0 {
		p.Quality = 85
	}
	if p.Quality < 1 || p.Quality > 100 {
		return fmt.Errorf("codec: quality %d out of [1,100]", p.Quality)
	}
	if p.GOPSize < 1 {
		return fmt.Errorf("codec: GOP size %d must be >= 1", p.GOPSize)
	}
	if p.Scenecut < 0 || p.Scenecut > MaxScenecut {
		return fmt.Errorf("codec: scenecut %.1f out of [0,%d]", p.Scenecut, MaxScenecut)
	}
	if p.SearchRange == 0 {
		p.SearchRange = 16
	}
	if p.SearchRange < 1 {
		return fmt.Errorf("codec: search range %d must be >= 1", p.SearchRange)
	}
	if p.SkipSAD == 0 {
		p.SkipSAD = 512
	}
	if p.MinGOP < 1 {
		p.MinGOP = 1
	}
	return nil
}

// EncodedFrame is one compressed frame plus the side information the SiEVE
// tuner and seeker rely on: its type, and the analysis costs that drove the
// I/P decision.
type EncodedFrame struct {
	// Number is the display/encode order index, starting at 0.
	Number int
	// Type is I or P.
	Type FrameType
	// Data is the entropy-coded payload (self-contained for I-frames given
	// the stream Params).
	Data []byte
	// IntraCost and InterCost are the half-resolution analysis costs used
	// for the scenecut decision (InterCost == IntraCost on frame 0).
	IntraCost, InterCost int64
}

// Errors shared by the decode paths.
var (
	ErrCorrupt   = errors.New("codec: corrupt bitstream")
	ErrNoRef     = errors.New("codec: P-frame decode without reference frame")
	ErrNotIFrame = errors.New("codec: payload is not an I-frame")
)

// MV is a full-pel motion vector.
type MV struct{ X, Y int }

// mbSize is the macroblock edge in luma pixels.
const mbSize = 16

// scenecutRatio maps the 0–400 threshold onto the inter/intra cost ratio
// test: a frame is a scenecut when interCost >= ratio·intraCost. The
// mapping is exponential so the threshold range covers the ratios real
// events produce — a hard cut replaces most of the frame (ratio near 1),
// while a small object easing into a static scene only adds a sliver of
// uncompensable pixels per frame (ratio a few percent, because the
// analyzer's per-block deadzone zeroes the noise floor):
//
//	threshold  20   40    100   200   250   400
//	ratio      0.75 0.56  0.24  0.057 0.028 0.003
//
// Higher thresholds are therefore more sensitive to small motion, matching
// the x264 convention the paper tunes (max 400 ≈ fire on any real motion).
// The constant is calibrated so the top of the paper's tuned range
// (200-250) catches the weakest real boundaries — the trailing sliver of
// an object leaving the scene.
func scenecutRatio(threshold float64) float64 {
	return math.Exp(-threshold / 70)
}

// Cost carries the per-frame analysis costs for the I/P decision.
type Cost struct {
	Intra, Inter int64
}

// DecideType is the pure I/P decision rule shared by the live encoder and
// the tuner's replay mode: frame 0 is I, the GOP bound forces I, and a
// scenecut fires when inter prediction stops beating intra by the margin the
// threshold demands.
func DecideType(c Cost, distanceSinceI int, p Params) FrameType {
	if distanceSinceI <= 0 { // first frame of the stream
		return FrameI
	}
	if distanceSinceI >= p.GOPSize {
		return FrameI
	}
	if p.Scenecut > 0 && distanceSinceI >= p.MinGOP {
		if float64(c.Inter) >= scenecutRatio(p.Scenecut)*float64(c.Intra) {
			return FrameI
		}
	}
	return FrameP
}
