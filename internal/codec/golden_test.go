package codec

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"slices"
	"strings"
	"testing"
)

// goldenStream describes one pinned encode: a seeded synthetic clip, the
// encoder parameters, and the SHA-256 of every payload the encoder must
// produce for it. The hashes were recorded from the reference implementation
// and pin the bitstream byte-for-byte: any codec change that alters a single
// bit of output fails here mechanically, instead of relying on round-trip
// tests to notice by luck.
type goldenStream struct {
	name    string
	p       Params
	w, h    int
	frames  int
	enter   int
	seed    int64
	digests []string // "<type>:<sha256>" per frame, in encode order
}

var goldenStreams = []goldenStream{
	{
		name: "mixed-gop-scenecut-64x48",
		p:    Params{Width: 64, Height: 48, Quality: 85, GOPSize: 8, Scenecut: 180},
		w:    64, h: 48, frames: 16, enter: 5, seed: 42,
		digests: []string{
			"I:ae6eda259afa8a68fe12955c3479f8fc716301968e63699642eee086ec46ef9f",
			"P:e20007ee3ea2ce38cf3891ca1c75f91578c9ee0a88eea4a24efe0b52f91d50f2",
			"P:cb216ce4e90e949e10c58562838463f58f9084e2c257ed935e9e1fe232bcbc39",
			"P:011dacb3b0e3408fe20b9276242f1f98e4fb27150e6e9ba44eac7412d36c91a1",
			"P:b92f0846a6326a16cad09344dd1adadb4cd5437e91763a1e19a8e06cc62c3b6e",
			"I:145ab1b78ea1447765b14bb9e65037fcf836a5bea47c92e6f8aa9beea0da5876",
			"I:d7718fdb3e3f1ea75f284be854ac07d0e0c535ba55c3e04c564c8850ca471b84",
			"P:901c96e2b0d8fa09b8ecf38444cc79cf4edf6654bbfbf5fd1824f06650b47c55",
			"P:6301fc5b184361bbbfac0504056a0af1e4f9aaa064c022c3b62ee5a17d3c4051",
			"P:8e8e6dbc22e6b7a129b9417ccd73183c1db10f33934937e54fc74f42dc7c8f9f",
			"P:2077020b2b369ad4520dc200ef896854d72c70c0becd21f2e5017fd4324abd2d",
			"P:9b22dc527e0aee05c005512b3bbe919e6419a9e7debd7e2a3143cc16dda3a756",
			"P:c9fe1b2bd1cb6f5a059c244c93c53e0a68d0b96d42dfb3fe1ab165791fde4723",
			"P:5604c8db30b69fce19b85280a4cb2bb4124a19f4c696a8bb91abd1a68911ef3b",
			"I:b6d736c6d5c4e7026669be15b071eaf31e63faacca6f5fec459159323f67b63e",
			"P:58db7071c7ba93f06e403c6326857b61f9f7c48ead3f8a3d2c09e389a7521d47",
		},
	},
	{
		name: "edge-dims-36x28",
		p:    Params{Width: 36, Height: 28, Quality: 70, GOPSize: 3, Scenecut: 0},
		w:    36, h: 28, frames: 6, enter: 2, seed: 7,
		digests: []string{
			"I:d2c581858489908e1f8aaaf3350c457f8601fdbd2ad16ac5508d801ee490c5f0",
			"P:aadc10e05188a1d25cdcd58966a85b74a83bcf5b7be2f7e9d42e47935ba61d46",
			"P:d7de221bb07af3dfee15e1add12a0bf25762cf867b20425356b6f6bccab60aee",
			"I:a4b126b21e885e4eac09a450d17850c688caf5f57cf3aa2b737a9b1cfbcfdd7f",
			"P:7ca12fe1a0068868cbca54322c101004283324aaafbf34108dff6b1f08cb613e",
			"P:84cff41c602824114713fd487337ba29786f063074e416c36304cea1c03c56f8",
		},
	},
}

// TestGoldenBitstream locks the encoder output byte-for-byte. If a change is
// *meant* to alter the bitstream (a format change), the failure message
// prints the replacement literal to paste into the fixture above — but for a
// pure refactor or optimisation this test failing means the change is wrong.
func TestGoldenBitstream(t *testing.T) {
	for _, g := range goldenStreams {
		t.Run(g.name, func(t *testing.T) {
			frames := testVideo(g.w, g.h, g.frames, g.enter, g.seed)
			encoded := encodeAll(t, g.p, frames)
			got := make([]string, len(encoded))
			for i, ef := range encoded {
				sum := sha256.Sum256(ef.Data)
				got[i] = fmt.Sprintf("%s:%s", ef.Type, hex.EncodeToString(sum[:]))
			}
			if len(g.digests) == 0 || !slices.Equal(got, g.digests) {
				var b strings.Builder
				for _, d := range got {
					fmt.Fprintf(&b, "\t\t\t%q,\n", d)
				}
				t.Fatalf("bitstream digests changed; if intentional, update the fixture to:\n%s", b.String())
			}
		})
	}
}
