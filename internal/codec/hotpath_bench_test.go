package codec

import (
	"testing"

	"sieve/internal/frame"
)

// Hot-path micro-benchmarks, run by `make bench-codec` (and as a 1-iteration
// CI smoke step, so they can never silently stop compiling). All report
// allocs: on a 1-core box allocs/op is the stable signal, ns/op the noisy
// one.

func BenchmarkEncodeP(b *testing.B) {
	p := Params{Width: 160, Height: 120, GOPSize: 1 << 20, Scenecut: 0}
	frames := testVideo(160, 120, 3, 1, 31)
	enc, err := NewEncoder(p)
	if err != nil {
		b.Fatal(err)
	}
	var ef EncodedFrame
	for _, f := range frames {
		if err := enc.EncodeInto(f, &ef); err != nil {
			b.Fatal(err)
		}
	}
	f := frames[len(frames)-1]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := enc.EncodeInto(f, &ef); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeInto(b *testing.B) {
	p := Params{Width: 160, Height: 120, GOPSize: 1 << 20, Scenecut: 0}
	frames := testVideo(160, 120, 3, 1, 32)
	enc, err := NewEncoder(p)
	if err != nil {
		b.Fatal(err)
	}
	var encoded []*EncodedFrame
	for _, f := range frames {
		ef, err := enc.Encode(f)
		if err != nil {
			b.Fatal(err)
		}
		encoded = append(encoded, ef)
	}
	dec, err := NewDecoder(p)
	if err != nil {
		b.Fatal(err)
	}
	out := frame.NewYUV(160, 120)
	for _, ef := range encoded {
		if err := dec.DecodeInto(ef.Data, out); err != nil {
			b.Fatal(err)
		}
	}
	data := encoded[len(encoded)-1].Data
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dec.DecodeInto(data, out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyze(b *testing.B) {
	frames := testVideo(160, 120, 3, 1, 33)
	an := NewCostAnalyzer()
	for _, f := range frames {
		an.Analyze(f)
	}
	f := frames[len(frames)-1]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		an.Analyze(f)
	}
}

func BenchmarkSADBounded(b *testing.B) {
	frames := testVideo(160, 120, 2, 0, 34)
	cur, ref := frames[1].Y, frames[0].Y
	// A tight bound exercises the early exit; the unbounded baseline is
	// frame.SAD on the same block.
	bound := frame.SAD(cur, 48, 48, ref, 48, 48, 16, 16)
	b.Run("bounded", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			frame.SADBounded(cur, 48, 48, ref, 52, 50, 16, 16, bound)
		}
	})
	b.Run("full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			frame.SAD(cur, 48, 48, ref, 52, 50, 16, 16)
		}
	})
}
