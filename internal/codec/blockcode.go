package codec

import (
	"fmt"

	"sieve/internal/bitstream"
	"sieve/internal/frame"
	"sieve/internal/transform"
)

// eobMarker terminates a block's AC run-level list. Legal runs are 0–62
// (positions 1..63 of the zig-zag scan), so 63 is unambiguous.
const eobMarker = 63

// blockCoder encodes and reconstructs 8×8 blocks against a prediction
// plane, sharing one scratch set of transform blocks across calls.
type blockCoder struct {
	qz                 *transform.Quantizer
	src, coef, lev, zz transform.Block
	dq, rec            transform.Block
	dcPred             int32
}

func newBlockCoder(quality int) *blockCoder {
	return &blockCoder{qz: transform.NewQuantizer(quality)}
}

// resetDC restarts DC prediction (call at the start of each plane).
func (bc *blockCoder) resetDC() { bc.dcPred = 0 }

// encodeBlock transforms and entropy-codes the 8×8 block of plane p at
// (bx, by) with the given per-pixel prediction, then writes the locally
// reconstructed pixels (prediction + dequantised residual) back into recon.
// pred supplies the prediction value for each offset; for intra blocks it is
// the constant 128, for inter blocks the motion-compensated reference.
func (bc *blockCoder) encodeBlock(w *bitstream.Writer, p, recon *frame.Plane, bx, by int, pred func(x, y int) int32) {
	for y := 0; y < transform.BlockSize; y++ {
		for x := 0; x < transform.BlockSize; x++ {
			bc.src[y*transform.BlockSize+x] = int32(p.At(bx+x, by+y)) - pred(x, y)
		}
	}
	transform.Forward(&bc.src, &bc.coef)
	bc.qz.Quantize(&bc.coef, &bc.lev)

	// Coded-block flag: all-zero blocks cost one bit.
	allZero := true
	for _, v := range bc.lev {
		if v != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		w.WriteBit(0)
		bc.reconstruct(recon, bx, by, pred, true)
		return
	}
	w.WriteBit(1)
	transform.ZigZag(&bc.lev, &bc.zz)
	w.WriteSE(int64(bc.zz[0] - bc.dcPred))
	bc.dcPred = bc.zz[0]
	run := 0
	for i := 1; i < len(bc.zz); i++ {
		if bc.zz[i] == 0 {
			run++
			continue
		}
		w.WriteUE(uint64(run))
		w.WriteSE(int64(bc.zz[i]))
		run = 0
	}
	w.WriteUE(eobMarker)
	bc.reconstruct(recon, bx, by, pred, false)
}

// reconstruct applies prediction + dequantised residual into recon, exactly
// mirroring what the decoder will compute, so encoder and decoder reference
// frames stay bit-identical (no drift).
func (bc *blockCoder) reconstruct(recon *frame.Plane, bx, by int, pred func(x, y int) int32, zero bool) {
	if zero {
		for y := 0; y < transform.BlockSize; y++ {
			for x := 0; x < transform.BlockSize; x++ {
				recon.Set(bx+x, by+y, frame.Clamp(int(pred(x, y))))
			}
		}
		return
	}
	bc.qz.Dequantize(&bc.lev, &bc.dq)
	transform.Inverse(&bc.dq, &bc.rec)
	for y := 0; y < transform.BlockSize; y++ {
		for x := 0; x < transform.BlockSize; x++ {
			recon.Set(bx+x, by+y, frame.Clamp(int(pred(x, y)+bc.rec[y*transform.BlockSize+x])))
		}
	}
}

// blockDecoder mirrors blockCoder on the read side.
type blockDecoder struct {
	qz      *transform.Quantizer
	zz, lev transform.Block
	dq, rec transform.Block
	dcPred  int32
}

func newBlockDecoder(quality int) *blockDecoder {
	return &blockDecoder{qz: transform.NewQuantizer(quality)}
}

func (bd *blockDecoder) resetDC() { bd.dcPred = 0 }

// decodeBlock reads one coded block and writes prediction + residual pixels
// into dst at (bx, by).
func (bd *blockDecoder) decodeBlock(r *bitstream.Reader, dst *frame.Plane, bx, by int, pred func(x, y int) int32) error {
	coded, err := r.ReadBit()
	if err != nil {
		return fmt.Errorf("coded-block flag: %w", err)
	}
	if coded == 0 {
		for y := 0; y < transform.BlockSize; y++ {
			for x := 0; x < transform.BlockSize; x++ {
				dst.Set(bx+x, by+y, frame.Clamp(int(pred(x, y))))
			}
		}
		return nil
	}
	for i := range bd.zz {
		bd.zz[i] = 0
	}
	dcDelta, err := r.ReadSE()
	if err != nil {
		return fmt.Errorf("dc delta: %w", err)
	}
	bd.dcPred += int32(dcDelta)
	bd.zz[0] = bd.dcPred
	pos := 1
	for {
		run, err := r.ReadUE()
		if err != nil {
			return fmt.Errorf("ac run: %w", err)
		}
		if run == eobMarker {
			break
		}
		pos += int(run)
		if pos >= len(bd.zz) {
			return fmt.Errorf("%w: run-level overflow at position %d", ErrCorrupt, pos)
		}
		level, err := r.ReadSE()
		if err != nil {
			return fmt.Errorf("ac level: %w", err)
		}
		if level == 0 {
			return fmt.Errorf("%w: zero AC level", ErrCorrupt)
		}
		bd.zz[pos] = int32(level)
		pos++
		if pos > len(bd.zz) {
			return fmt.Errorf("%w: scan position overflow", ErrCorrupt)
		}
	}
	transform.UnZigZag(&bd.zz, &bd.lev)
	bd.qz.Dequantize(&bd.lev, &bd.dq)
	transform.Inverse(&bd.dq, &bd.rec)
	for y := 0; y < transform.BlockSize; y++ {
		for x := 0; x < transform.BlockSize; x++ {
			dst.Set(bx+x, by+y, frame.Clamp(int(pred(x, y)+bd.rec[y*transform.BlockSize+x])))
		}
	}
	return nil
}
