package codec

import (
	"fmt"

	"sieve/internal/bitstream"
	"sieve/internal/frame"
	"sieve/internal/transform"
)

// eobMarker terminates a block's AC run-level list. Legal runs are 0–62
// (positions 1..63 of the zig-zag scan), so 63 is unambiguous.
const eobMarker = 63

// fillPredConst fills a prediction block with the constant intra predictor.
func fillPredConst(dst *transform.Block) {
	for i := range dst {
		dst[i] = intraShift
	}
}

// fillPredMC fills a prediction block with the motion-compensated reference
// pixels at (bx+mv.X, by+mv.Y). Interior blocks take the row-copy fast path;
// blocks whose reference window crosses a plane edge fall back to clamped
// addressing (the codec's border-extension rule), producing identical values.
func fillPredMC(dst *transform.Block, ref *frame.Plane, bx, by int, mv MV) {
	sx, sy := bx+mv.X, by+mv.Y
	if sx >= 0 && sy >= 0 && sx+transform.BlockSize <= ref.W && sy+transform.BlockSize <= ref.H {
		for y := 0; y < transform.BlockSize; y++ {
			row := ref.Pix[(sy+y)*ref.Stride+sx : (sy+y)*ref.Stride+sx+transform.BlockSize]
			d := dst[y*transform.BlockSize : y*transform.BlockSize+transform.BlockSize]
			for x := 0; x < transform.BlockSize; x++ {
				d[x] = int32(row[x])
			}
		}
		return
	}
	for y := 0; y < transform.BlockSize; y++ {
		for x := 0; x < transform.BlockSize; x++ {
			dst[y*transform.BlockSize+x] = int32(ref.At(sx+x, sy+y))
		}
	}
}

// blockCoder encodes and reconstructs 8×8 blocks against a prediction
// block, sharing one scratch set of transform blocks across calls. The
// caller fills pred (fillPredConst / fillPredMC) before each encodeBlock —
// a flat scratch array instead of a per-pixel callback, so the hot loop is
// 64 array reads rather than 64 indirect calls.
type blockCoder struct {
	qz                 *transform.Quantizer
	pred               transform.Block
	src, coef, lev, zz transform.Block
	dq, rec            transform.Block
	dcPred             int32
}

func newBlockCoder(quality int) *blockCoder {
	return &blockCoder{qz: transform.NewQuantizer(quality)}
}

// resetDC restarts DC prediction (call at the start of each plane).
func (bc *blockCoder) resetDC() { bc.dcPred = 0 }

// encodeBlock transforms and entropy-codes the 8×8 block of plane p at
// (bx, by) against the prediction in bc.pred, then writes the locally
// reconstructed pixels (prediction + dequantised residual) into recon.
func (bc *blockCoder) encodeBlock(w *bitstream.Writer, p, recon *frame.Plane, bx, by int) {
	if bx >= 0 && by >= 0 && bx+transform.BlockSize <= p.W && by+transform.BlockSize <= p.H {
		for y := 0; y < transform.BlockSize; y++ {
			row := p.Pix[(by+y)*p.Stride+bx : (by+y)*p.Stride+bx+transform.BlockSize]
			s := bc.src[y*transform.BlockSize : y*transform.BlockSize+transform.BlockSize]
			pr := bc.pred[y*transform.BlockSize : y*transform.BlockSize+transform.BlockSize]
			for x := 0; x < transform.BlockSize; x++ {
				s[x] = int32(row[x]) - pr[x]
			}
		}
	} else {
		for y := 0; y < transform.BlockSize; y++ {
			for x := 0; x < transform.BlockSize; x++ {
				bc.src[y*transform.BlockSize+x] = int32(p.At(bx+x, by+y)) - bc.pred[y*transform.BlockSize+x]
			}
		}
	}
	transform.Forward(&bc.src, &bc.coef)
	bc.qz.Quantize(&bc.coef, &bc.lev)

	// Coded-block flag: all-zero blocks cost one bit.
	allZero := true
	for _, v := range bc.lev {
		if v != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		w.WriteBit(0)
		bc.reconstruct(recon, bx, by, true)
		return
	}
	w.WriteBit(1)
	transform.ZigZag(&bc.lev, &bc.zz)
	w.WriteSE(int64(bc.zz[0] - bc.dcPred))
	bc.dcPred = bc.zz[0]
	run := 0
	for i := 1; i < len(bc.zz); i++ {
		if bc.zz[i] == 0 {
			run++
			continue
		}
		w.WriteUE(uint64(run))
		w.WriteSE(int64(bc.zz[i]))
		run = 0
	}
	w.WriteUE(eobMarker)
	bc.reconstruct(recon, bx, by, false)
}

// reconstruct applies prediction + dequantised residual into recon, exactly
// mirroring what the decoder will compute, so encoder and decoder reference
// frames stay bit-identical (no drift).
func (bc *blockCoder) reconstruct(recon *frame.Plane, bx, by int, zero bool) {
	if zero {
		writePredBlock(recon, bx, by, &bc.pred)
		return
	}
	bc.qz.Dequantize(&bc.lev, &bc.dq)
	transform.Inverse(&bc.dq, &bc.rec)
	writeResidualBlock(recon, bx, by, &bc.pred, &bc.rec)
}

// writePredBlock stores clamp(pred) into the 8×8 block at (bx, by); pixels
// outside the plane are dropped, matching Plane.Set.
func writePredBlock(dst *frame.Plane, bx, by int, pred *transform.Block) {
	if bx >= 0 && by >= 0 && bx+transform.BlockSize <= dst.W && by+transform.BlockSize <= dst.H {
		for y := 0; y < transform.BlockSize; y++ {
			row := dst.Pix[(by+y)*dst.Stride+bx : (by+y)*dst.Stride+bx+transform.BlockSize]
			pr := pred[y*transform.BlockSize : y*transform.BlockSize+transform.BlockSize]
			for x := 0; x < transform.BlockSize; x++ {
				row[x] = frame.Clamp(int(pr[x]))
			}
		}
		return
	}
	for y := 0; y < transform.BlockSize; y++ {
		for x := 0; x < transform.BlockSize; x++ {
			dst.Set(bx+x, by+y, frame.Clamp(int(pred[y*transform.BlockSize+x])))
		}
	}
}

// writeResidualBlock stores clamp(pred + residual) into the 8×8 block at
// (bx, by), with the same edge handling as writePredBlock.
func writeResidualBlock(dst *frame.Plane, bx, by int, pred, res *transform.Block) {
	if bx >= 0 && by >= 0 && bx+transform.BlockSize <= dst.W && by+transform.BlockSize <= dst.H {
		for y := 0; y < transform.BlockSize; y++ {
			row := dst.Pix[(by+y)*dst.Stride+bx : (by+y)*dst.Stride+bx+transform.BlockSize]
			pr := pred[y*transform.BlockSize : y*transform.BlockSize+transform.BlockSize]
			rs := res[y*transform.BlockSize : y*transform.BlockSize+transform.BlockSize]
			for x := 0; x < transform.BlockSize; x++ {
				row[x] = frame.Clamp(int(pr[x] + rs[x]))
			}
		}
		return
	}
	for y := 0; y < transform.BlockSize; y++ {
		for x := 0; x < transform.BlockSize; x++ {
			dst.Set(bx+x, by+y, frame.Clamp(int(pred[y*transform.BlockSize+x]+res[y*transform.BlockSize+x])))
		}
	}
}

// blockDecoder mirrors blockCoder on the read side, with the same caller-
// filled prediction block.
type blockDecoder struct {
	qz      *transform.Quantizer
	pred    transform.Block
	zz, lev transform.Block
	dq, rec transform.Block
	dcPred  int32
}

func newBlockDecoder(quality int) *blockDecoder {
	return &blockDecoder{qz: transform.NewQuantizer(quality)}
}

func (bd *blockDecoder) resetDC() { bd.dcPred = 0 }

// decodeBlock reads one coded block and writes prediction + residual pixels
// into dst at (bx, by), predicting from bd.pred.
func (bd *blockDecoder) decodeBlock(r *bitstream.Reader, dst *frame.Plane, bx, by int) error {
	coded, err := r.ReadBit()
	if err != nil {
		return fmt.Errorf("coded-block flag: %w", err)
	}
	if coded == 0 {
		writePredBlock(dst, bx, by, &bd.pred)
		return nil
	}
	for i := range bd.zz {
		bd.zz[i] = 0
	}
	dcDelta, err := r.ReadSE()
	if err != nil {
		return fmt.Errorf("dc delta: %w", err)
	}
	bd.dcPred += int32(dcDelta)
	bd.zz[0] = bd.dcPred
	pos := 1
	for {
		run, err := r.ReadUE()
		if err != nil {
			return fmt.Errorf("ac run: %w", err)
		}
		if run == eobMarker {
			break
		}
		pos += int(run)
		if pos >= len(bd.zz) {
			return fmt.Errorf("%w: run-level overflow at position %d", ErrCorrupt, pos)
		}
		level, err := r.ReadSE()
		if err != nil {
			return fmt.Errorf("ac level: %w", err)
		}
		if level == 0 {
			return fmt.Errorf("%w: zero AC level", ErrCorrupt)
		}
		bd.zz[pos] = int32(level)
		pos++
		if pos > len(bd.zz) {
			return fmt.Errorf("%w: scan position overflow", ErrCorrupt)
		}
	}
	transform.UnZigZag(&bd.zz, &bd.lev)
	bd.qz.Dequantize(&bd.lev, &bd.dq)
	transform.Inverse(&bd.dq, &bd.rec)
	writeResidualBlock(dst, bx, by, &bd.pred, &bd.rec)
	return nil
}
