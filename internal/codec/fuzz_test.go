package codec

import (
	"testing"

	"sieve/internal/frame"
)

// FuzzDecode feeds arbitrary payloads to the steady-state DecodeInto path
// and checks the decoder's two crash-safety invariants: no input panics,
// and a REJECTED payload leaves the ping-pong reference untouched — the
// stream keeps decoding afterwards exactly as if the corrupt frame had
// never arrived (losing one frame to line noise must not wreck the GOP).
func FuzzDecode(f *testing.F) {
	p := Params{Width: 32, Height: 24, Quality: 85, GOPSize: 4, Scenecut: 0}
	frames := testVideo(32, 24, 6, 2, 42)
	enc, err := NewEncoder(p)
	if err != nil {
		f.Fatal(err)
	}
	seeds := make([][]byte, 0, len(frames))
	for _, fr := range frames {
		ef, err := enc.Encode(fr)
		if err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, append([]byte(nil), ef.Data...))
	}
	for _, s := range seeds {
		f.Add(s)
	}
	// Seed obvious corruptions: truncation, type-byte damage, bit flips.
	f.Add(seeds[0][:len(seeds[0])/2])
	flipped := append([]byte(nil), seeds[1]...)
	flipped[0] ^= 0xFF
	f.Add(flipped)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		control, err := NewDecoder(p)
		if err != nil {
			t.Fatal(err)
		}
		subject, err := NewDecoder(p)
		if err != nil {
			t.Fatal(err)
		}
		// Both decoders establish the same reference from the seed I-frame.
		if _, err := control.Decode(seeds[0]); err != nil {
			t.Fatal(err)
		}
		if _, err := subject.Decode(seeds[0]); err != nil {
			t.Fatal(err)
		}
		out := frame.NewYUV(p.Width, p.Height)
		if err := subject.DecodeInto(data, out); err == nil {
			// The fuzzer found a decodable payload: garbage pixels are
			// acceptable, the reference legitimately advanced. Done.
			return
		}
		// The payload was rejected: the subject's reference must be intact,
		// so the next valid P-frame decodes identically on both decoders.
		want, err := control.Decode(seeds[1])
		if err != nil {
			t.Fatal(err)
		}
		got, err := subject.Decode(seeds[1])
		if err != nil {
			t.Fatalf("decoder broken after rejected payload: %v", err)
		}
		if !want.Equal(got) {
			t.Fatal("rejected payload corrupted the decoder's reference state")
		}
	})
}
