package codec

import (
	"fmt"

	"sieve/internal/frame"
)

// CostAnalyzer computes the per-frame intra/inter costs that drive the
// scenecut decision. Like x264's lookahead it works on half-resolution
// copies of the *original* frames, so its output depends only on the video
// content — not on quantisation or on where previous I-frames were placed.
// That independence is what lets the offline tuner replay I-frame placement
// for every parameter configuration from one analysis pass.
// The analyzer owns two half-res planes and ping-pongs between them — the
// current downsample target and the previous frame's — so steady-state
// Analyze allocates nothing.
type CostAnalyzer struct {
	prev *frame.Plane // last frame's half-res luma (one of half), nil = no history
	half [2]*frame.Plane
	cur  int // index in half to downsample the next frame into
}

// NewCostAnalyzer returns an analyzer with no history; the first Analyze
// call reports Inter == Intra (frame 0 has no reference).
func NewCostAnalyzer() *CostAnalyzer { return &CostAnalyzer{} }

// Reset drops the reference history (the buffers are kept for reuse).
func (a *CostAnalyzer) Reset() { a.prev = nil }

// analysisBlock is the block size used on the half-res plane (8 px there
// corresponds to a 16-px macroblock at full resolution).
const analysisBlock = 8

// analysisRange is the half-res motion search radius.
const analysisRange = 8

// Analyze consumes the next original frame and returns its decision costs.
// Steady state (fixed geometry) reuses the analyzer's two half-res buffers.
//
//sieve:noalloc per-frame cost scan pinned to 0 allocs/op by alloc_test.go
func (a *CostAnalyzer) Analyze(f *frame.YUV) Cost {
	w, h := halfDims(f.Y)
	if a.half[0] == nil || a.half[0].W != w || a.half[0].H != h {
		a.half[0] = frame.NewPlane(w, h)
		a.half[1] = frame.NewPlane(w, h)
		a.prev = nil
		a.cur = 0
	}
	half := a.half[a.cur]
	Downsample2xInto(half, f.Y)
	intra := intraCost(half)
	inter := intra
	if a.prev != nil {
		inter = interCost(half, a.prev)
	}
	a.prev = half
	a.cur = 1 - a.cur
	return Cost{Intra: intra, Inter: inter}
}

func halfDims(p *frame.Plane) (int, int) {
	w, h := p.W/2, p.H/2
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	return w, h
}

// Downsample2x box-filters a plane to half resolution in each dimension.
func Downsample2x(p *frame.Plane) *frame.Plane {
	w, h := halfDims(p)
	d := frame.NewPlane(w, h)
	Downsample2xInto(d, p)
	return d
}

// Downsample2xInto box-filters p into the preallocated dst, which must have
// halfDims(p) geometry. Interior rows use direct row addressing; the last
// column/row of odd-sized planes falls back to clamped At.
func Downsample2xInto(dst, p *frame.Plane) {
	w, h := halfDims(p)
	if dst.W != w || dst.H != h {
		panic(fmt.Sprintf("codec: Downsample2xInto dst %dx%d, want %dx%d", dst.W, dst.H, w, h))
	}
	interior := 2*h <= p.H && 2*w <= p.W
	for y := 0; y < h; y++ {
		row := dst.Row(y)
		if interior {
			r0 := p.Pix[(2*y)*p.Stride : (2*y)*p.Stride+2*w]
			r1 := p.Pix[(2*y+1)*p.Stride : (2*y+1)*p.Stride+2*w]
			for x := 0; x < w; x++ {
				s := int(r0[2*x]) + int(r0[2*x+1]) + int(r1[2*x]) + int(r1[2*x+1])
				row[x] = byte((s + 2) / 4)
			}
			continue
		}
		for x := 0; x < w; x++ {
			s := int(p.At(2*x, 2*y)) + int(p.At(2*x+1, 2*y)) +
				int(p.At(2*x, 2*y+1)) + int(p.At(2*x+1, 2*y+1))
			row[x] = byte((s + 2) / 4)
		}
	}
}

// intraCost approximates the intra coding cost of a plane as the summed
// deviation of each 8×8 block from its own mean (DC prediction residual).
func intraCost(p *frame.Plane) int64 {
	var total int64
	for by := 0; by < p.H; by += analysisBlock {
		for bx := 0; bx < p.W; bx += analysisBlock {
			total += int64(blockDCCost(p, bx, by))
		}
	}
	// Floor keeps the inter/intra ratio meaningful on near-flat video
	// (an all-grey frame has intra cost ~0, which would make every tiny
	// noise wiggle register as a scenecut).
	if min := int64(p.W * p.H / 4); total < min {
		total = min
	}
	return total
}

func blockDCCost(p *frame.Plane, bx, by int) int {
	w := analysisBlock
	h := analysisBlock
	if bx+w > p.W {
		w = p.W - bx
	}
	if by+h > p.H {
		h = p.H - by
	}
	if w <= 0 || h <= 0 {
		return 0
	}
	sum := 0
	for y := 0; y < h; y++ {
		row := p.Row(by + y)
		for x := 0; x < w; x++ {
			sum += int(row[bx+x])
		}
	}
	mean := (sum + w*h/2) / (w * h)
	cost := 0
	for y := 0; y < h; y++ {
		row := p.Row(by + y)
		for x := 0; x < w; x++ {
			d := int(row[bx+x]) - mean
			if d < 0 {
				d = -d
			}
			cost += d
		}
	}
	return cost
}

// interDeadzonePerPixel is subtracted from each block's motion-compensated
// SAD (per pixel) before it counts toward the frame's inter cost. Sensor
// noise and global flicker produce a small residual in *every* block; the
// deadzone zeroes that floor so the inter cost measures only content the
// previous frame genuinely cannot predict — which is what makes the
// scenecut test separate "object entered" from "noisy quiet frame".
const interDeadzonePerPixel = 1

// interCost is the summed motion-compensated, deadzoned SAD of cur's 8×8
// blocks against ref, using a diamond search per block.
func interCost(cur, ref *frame.Plane) int64 {
	deadzone := interDeadzonePerPixel * analysisBlock * analysisBlock
	var total int64
	pred := MV{}
	for by := 0; by < cur.H; by += analysisBlock {
		pred = MV{}
		for bx := 0; bx < cur.W; bx += analysisBlock {
			mv, sad := diamondSearch(cur, ref, bx, by, analysisBlock, analysisRange, pred)
			pred = mv
			if sad > deadzone {
				total += int64(sad - deadzone)
			}
		}
	}
	return total
}
