package codec

import "sieve/internal/frame"

// largeDiamond and smallDiamond are the classic LDSP/SDSP point sets.
var (
	largeDiamond = []MV{{0, -2}, {-1, -1}, {1, -1}, {-2, 0}, {2, 0}, {-1, 1}, {1, 1}, {0, 2}}
	smallDiamond = []MV{{0, -1}, {-1, 0}, {1, 0}, {0, 1}}
)

// searchMotion finds the motion vector minimising SAD for the size×size
// block at (bx, by) of cur against ref, within ±rangePx of (0,0). pred seeds
// the search (typically the left neighbour's MV).
func searchMotion(cur, ref *frame.Plane, bx, by, size, rangePx int, pred MV, method MotionSearch) (MV, int) {
	if method == SearchFull {
		return fullSearch(cur, ref, bx, by, size, rangePx)
	}
	return diamondSearch(cur, ref, bx, by, size, rangePx, pred)
}

func clampMV(v, rangePx int) int {
	if v < -rangePx {
		return -rangePx
	}
	if v > rangePx {
		return rangePx
	}
	return v
}

// diamondSearch threads the running best cost into every candidate SAD as
// an early-exit bound: a candidate only matters if it is strictly better, so
// frame.SADBounded can stop summing rows as soon as the partial sum reaches
// bestCost without changing which vector wins. The returned cost is always
// exact — a winning candidate's sum completes below the bound by definition.
func diamondSearch(cur, ref *frame.Plane, bx, by, size, rangePx int, pred MV) (MV, int) {
	best := MV{}
	bestCost := frame.SAD(cur, bx, by, ref, bx, by, size, size)
	// Early exit: a static block needs no search.
	if bestCost <= size*size/2 {
		return best, bestCost
	}
	pred = MV{clampMV(pred.X, rangePx), clampMV(pred.Y, rangePx)}
	if pred != best {
		if c := frame.SADBounded(cur, bx, by, ref, bx+pred.X, by+pred.Y, size, size, bestCost); c < bestCost {
			best, bestCost = pred, c
		}
	}
	// Large diamond until the centre wins.
	for steps := 0; steps < 2*rangePx; steps++ {
		improved := false
		for _, d := range largeDiamond {
			cand := MV{clampMV(best.X+d.X, rangePx), clampMV(best.Y+d.Y, rangePx)}
			if cand == best {
				continue
			}
			if c := frame.SADBounded(cur, bx, by, ref, bx+cand.X, by+cand.Y, size, size, bestCost); c < bestCost {
				best, bestCost = cand, c
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	// Small diamond refinement.
	for _, d := range smallDiamond {
		cand := MV{clampMV(best.X+d.X, rangePx), clampMV(best.Y+d.Y, rangePx)}
		if c := frame.SADBounded(cur, bx, by, ref, bx+cand.X, by+cand.Y, size, size, bestCost); c < bestCost {
			best, bestCost = cand, c
		}
	}
	return best, bestCost
}

// fullSearch bounds each candidate at bestCost+1, not bestCost: its
// tie-break (equal cost, strictly shorter vector wins) needs the exact SAD
// when c == bestCost, and with bound = bestCost+1 any true sum <= bestCost
// completes without an early exit, i.e. exactly.
func fullSearch(cur, ref *frame.Plane, bx, by, size, rangePx int) (MV, int) {
	best := MV{}
	bestCost := frame.SAD(cur, bx, by, ref, bx, by, size, size)
	for dy := -rangePx; dy <= rangePx; dy++ {
		for dx := -rangePx; dx <= rangePx; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			c := frame.SADBounded(cur, bx, by, ref, bx+dx, by+dy, size, size, bestCost+1)
			if c < bestCost || (c == bestCost && absInt(dx)+absInt(dy) < absInt(best.X)+absInt(best.Y)) {
				best, bestCost = MV{dx, dy}, c
			}
		}
	}
	return best, bestCost
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// motionCompensate copies the size×size block at (bx+mv.X, by+mv.Y) of ref
// into dst at (bx, by), extending borders for out-of-frame references.
func motionCompensate(dst, ref *frame.Plane, bx, by int, mv MV, size int) {
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			dst.Set(bx+x, by+y, ref.At(bx+x+mv.X, by+y+mv.Y))
		}
	}
}
