package codec

import (
	"math/rand"
	"testing"
)

// TestDecodeSurvivesBitCorruption injects random bit flips into encoded
// payloads and asserts the decoder never panics: every corrupted payload
// either still decodes (the flip landed in coefficient data — visual
// garbage is acceptable) or returns an error. Robustness here matters
// because the edge ingests camera streams over lossy links.
func TestDecodeSurvivesBitCorruption(t *testing.T) {
	p := Params{Width: 64, Height: 48, Quality: 85, GOPSize: 8, Scenecut: 0}
	frames := testVideo(64, 48, 16, 4, 99)
	encoded := encodeAll(t, p, frames)
	rng := rand.New(rand.NewSource(123))

	for trial := 0; trial < 300; trial++ {
		src := encoded[rng.Intn(len(encoded))]
		data := append([]byte(nil), src.Data...)
		// Flip 1-4 random bits.
		for k := 0; k <= rng.Intn(4); k++ {
			pos := rng.Intn(len(data))
			data[pos] ^= 1 << rng.Intn(8)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: decoder panicked on corrupted frame %d: %v",
						trial, src.Number, r)
				}
			}()
			dec, err := NewDecoder(p)
			if err != nil {
				t.Fatal(err)
			}
			// Seed the reference so P-frames have something to predict from.
			if src.Type == FrameP {
				if _, err := dec.Decode(encoded[0].Data); err != nil {
					t.Fatal(err)
				}
			}
			img, err := dec.Decode(data)
			if err == nil && (img.W != p.Width || img.H != p.Height) {
				t.Fatalf("trial %d: corrupted decode produced %dx%d", trial, img.W, img.H)
			}
		}()
	}
}

// TestDecodeSurvivesTruncation checks every truncation point of an I-frame
// payload errors cleanly.
func TestDecodeSurvivesTruncation(t *testing.T) {
	p := Params{Width: 32, Height: 32, Quality: 85, GOPSize: 8, Scenecut: 0}
	frames := testVideo(32, 32, 1, 0, 7)
	encoded := encodeAll(t, p, frames)
	data := encoded[0].Data
	step := len(data)/64 + 1
	for cut := 0; cut < len(data); cut += step {
		if _, err := DecodeIFrame(p, data[:cut]); err == nil && cut < len(data)*3/4 {
			t.Fatalf("truncation at %d of %d decoded without error", cut, len(data))
		}
	}
}
