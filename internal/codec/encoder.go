package codec

import (
	"fmt"

	"sieve/internal/bitstream"
	"sieve/internal/frame"
	"sieve/internal/transform"
)

// intraShift is the constant prediction used for intra blocks.
const intraShift = 128

// Encoder compresses a sequence of frames. It is not safe for concurrent
// use; run one Encoder per stream.
//
// The encoder owns two reference frames and ping-pongs between them: recon
// always holds the reconstruction of the last encoded frame (what the
// decoder will see), and scratch receives the next P-frame's reconstruction
// while recon serves as its prediction source. Swapping the two pointers
// after each P-frame replaces the three full-plane clones per frame the
// naive in-place scheme needs, so steady-state encoding allocates nothing.
type Encoder struct {
	p        Params
	analyzer *CostAnalyzer
	recon    *frame.YUV // reconstruction of the last encoded frame
	scratch  *frame.YUV // ping-pong partner for P-frame reconstruction
	num      int        // next frame number
	sinceI   int        // frames since last I-frame (0 right after an I)
	forceI   bool       // next EncodeInto must place an I-frame (see ForceNextI)
	bc       *blockCoder
	w        *bitstream.Writer
}

// NewEncoder validates p and returns a ready encoder.
func NewEncoder(p Params) (*Encoder, error) {
	if err := p.normalize(); err != nil {
		return nil, err
	}
	return &Encoder{
		p:        p,
		analyzer: NewCostAnalyzer(),
		recon:    frame.NewYUV(p.Width, p.Height),
		scratch:  frame.NewYUV(p.Width, p.Height),
		bc:       newBlockCoder(p.Quality),
		w:        bitstream.NewWriter(p.Width * p.Height / 4),
	}, nil
}

// Params returns the encoder's normalised parameters.
func (e *Encoder) Params() Params { return e.p }

// Encode compresses the next frame, deciding its type via the GOP/scenecut
// rule. The input frame is not retained. The returned EncodedFrame and its
// Data are freshly allocated and owned by the caller; the allocation-free
// hot path is EncodeInto.
func (e *Encoder) Encode(f *frame.YUV) (*EncodedFrame, error) {
	ef := &EncodedFrame{}
	if err := e.EncodeInto(f, ef); err != nil {
		return nil, err
	}
	return ef, nil
}

// EncodeInto compresses the next frame into ef, reusing ef.Data's capacity.
// In steady state (ef reused across calls, geometry fixed) it performs zero
// heap allocations: the payload is built in the encoder's bitstream writer
// and copied once into ef.Data. ef.Data remains caller-owned; it is only
// rewritten by the caller's next EncodeInto with the same ef.
//
//sieve:noalloc steady-state P-frame path pinned to 0 allocs/op by alloc_test.go
func (e *Encoder) EncodeInto(f *frame.YUV, ef *EncodedFrame) error {
	cost := e.analyzer.Analyze(f)
	dist := 0
	if e.num > 0 {
		dist = e.sinceI + 1 // distance this frame would have from last I
	}
	ft := DecideType(cost, dist, e.p)
	if e.forceI {
		ft = FrameI
		e.forceI = false
	}
	return e.encodeAs(f, ft, cost, ef)
}

// ForceNextI makes the next EncodeInto place an I-frame regardless of the
// GOP/scenecut decision, resetting the GOP distance as any I-frame does.
// Stream ingest uses it at discontinuities: a frame that follows a gap
// (reconnect, shed frames) must not predict from a reference the stored
// stream's decoder never saw. The flag is consumed by the next EncodeInto
// and has no effect on any later frame.
func (e *Encoder) ForceNextI() { e.forceI = true }

// EncodeForced compresses the next frame with a caller-chosen type,
// bypassing the decision rule (frame 0 must still be an I-frame).
func (e *Encoder) EncodeForced(f *frame.YUV, ft FrameType) (*EncodedFrame, error) {
	cost := e.analyzer.Analyze(f)
	if e.num == 0 && ft != FrameI {
		return nil, fmt.Errorf("codec: frame 0 must be an I-frame")
	}
	ef := &EncodedFrame{}
	if err := e.encodeAs(f, ft, cost, ef); err != nil {
		return nil, err
	}
	return ef, nil
}

//sieve:noalloc shared by EncodeInto; error branches are cold
func (e *Encoder) encodeAs(f *frame.YUV, ft FrameType, cost Cost, ef *EncodedFrame) error {
	if f.W != e.p.Width || f.H != e.p.Height {
		return fmt.Errorf("codec: frame %dx%d does not match stream %dx%d",
			f.W, f.H, e.p.Width, e.p.Height)
	}
	if e.num == 0 {
		ft = FrameI
	}
	e.w.Reset()
	// One-byte header: frame type in the top bit, quality in the low 7.
	e.w.WriteBits(uint64(ft)&1, 1)
	e.w.WriteBits(uint64(e.p.Quality), 7)

	switch ft {
	case FrameI:
		e.encodeIntra(f)
		e.sinceI = 0
	case FrameP:
		e.encodeInter(f)
		e.sinceI++
	default:
		return fmt.Errorf("codec: unknown frame type %v", ft)
	}

	ef.Number = e.num
	ef.Type = ft
	ef.Data = append(ef.Data[:0], e.w.Bytes()...)
	ef.IntraCost = cost.Intra
	ef.InterCost = cost.Inter
	e.num++
	return nil
}

//sieve:noalloc leaf of the encode hot path
func (e *Encoder) encodeIntra(f *frame.YUV) {
	fillPredConst(&e.bc.pred)
	for _, pl := range [3]struct{ src, rec *frame.Plane }{
		{f.Y, e.recon.Y}, {f.Cb, e.recon.Cb}, {f.Cr, e.recon.Cr},
	} {
		e.bc.resetDC()
		for by := 0; by < pl.src.H; by += transform.BlockSize {
			for bx := 0; bx < pl.src.W; bx += transform.BlockSize {
				e.bc.encodeBlock(e.w, pl.src, pl.rec, bx, by)
			}
		}
	}
}

//sieve:noalloc leaf of the encode hot path
func (e *Encoder) encodeInter(f *frame.YUV) {
	// P-frames predict only from the previous frame's reconstruction, so the
	// macroblock loop reads ref (the last recon) and writes dst (the other
	// ping-pong buffer); the final swap makes dst the new reference. Every
	// plane pixel of dst is written exactly once — by a skip copy or a block
	// reconstruction — so no clearing is needed.
	ref, dst := e.recon, e.scratch

	e.bc.resetDC()
	dcY, dcCb, dcCr := int32(0), int32(0), int32(0)
	pred := MV{}
	for mby := 0; mby < f.H; mby += mbSize {
		pred = MV{}
		for mbx := 0; mbx < f.W; mbx += mbSize {
			mv, sad := searchMotion(f.Y, ref.Y, mbx, mby, mbSize, e.p.SearchRange, pred, e.p.Search)
			if mv == (MV{}) && sad < e.p.SkipSAD {
				// Skip: decoder copies the co-located block.
				e.w.WriteBit(1)
				copyBlock(dst.Y, ref.Y, mbx, mby, mbSize, MV{})
				copyBlock(dst.Cb, ref.Cb, mbx/2, mby/2, mbSize/2, MV{})
				copyBlock(dst.Cr, ref.Cr, mbx/2, mby/2, mbSize/2, MV{})
				pred = MV{}
				continue
			}
			e.w.WriteBit(0)
			e.w.WriteSE(int64(mv.X - pred.X))
			e.w.WriteSE(int64(mv.Y - pred.Y))
			pred = mv

			// Four 8×8 luma blocks of this macroblock.
			e.bc.dcPred = dcY
			for sub := 0; sub < 4; sub++ {
				bx := mbx + (sub%2)*transform.BlockSize
				by := mby + (sub/2)*transform.BlockSize
				fillPredMC(&e.bc.pred, ref.Y, bx, by, mv)
				e.bc.encodeBlock(e.w, f.Y, dst.Y, bx, by)
			}
			dcY = e.bc.dcPred
			// One 8×8 block per chroma plane, MV halved.
			cmv := MV{mv.X / 2, mv.Y / 2}
			cbx, cby := mbx/2, mby/2
			e.bc.dcPred = dcCb
			fillPredMC(&e.bc.pred, ref.Cb, cbx, cby, cmv)
			e.bc.encodeBlock(e.w, f.Cb, dst.Cb, cbx, cby)
			dcCb = e.bc.dcPred
			e.bc.dcPred = dcCr
			fillPredMC(&e.bc.pred, ref.Cr, cbx, cby, cmv)
			e.bc.encodeBlock(e.w, f.Cr, dst.Cr, cbx, cby)
			dcCr = e.bc.dcPred
		}
	}
	e.recon, e.scratch = dst, ref
}

//sieve:noalloc motion-compensation inner loop
func copyBlock(dst, src *frame.Plane, bx, by, size int, mv MV) {
	sx, sy := bx+mv.X, by+mv.Y
	if bx >= 0 && by >= 0 && bx+size <= dst.W && by+size <= dst.H &&
		sx >= 0 && sy >= 0 && sx+size <= src.W && sy+size <= src.H {
		for y := 0; y < size; y++ {
			copy(dst.Pix[(by+y)*dst.Stride+bx:(by+y)*dst.Stride+bx+size],
				src.Pix[(sy+y)*src.Stride+sx:(sy+y)*src.Stride+sx+size])
		}
		return
	}
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			dst.Set(bx+x, by+y, src.At(sx+x, sy+y))
		}
	}
}
