package codec

import (
	"fmt"

	"sieve/internal/bitstream"
	"sieve/internal/frame"
	"sieve/internal/transform"
)

// intraShift is the constant prediction used for intra blocks.
const intraShift = 128

// Encoder compresses a sequence of frames. It is not safe for concurrent
// use; run one Encoder per stream.
type Encoder struct {
	p        Params
	analyzer *CostAnalyzer
	recon    *frame.YUV // reconstructed reference (what the decoder will see)
	num      int        // next frame number
	sinceI   int        // frames since last I-frame (0 right after an I)
	bc       *blockCoder
	w        *bitstream.Writer
}

// NewEncoder validates p and returns a ready encoder.
func NewEncoder(p Params) (*Encoder, error) {
	if err := p.normalize(); err != nil {
		return nil, err
	}
	return &Encoder{
		p:        p,
		analyzer: NewCostAnalyzer(),
		bc:       newBlockCoder(p.Quality),
		w:        bitstream.NewWriter(p.Width * p.Height / 4),
	}, nil
}

// Params returns the encoder's normalised parameters.
func (e *Encoder) Params() Params { return e.p }

// Encode compresses the next frame, deciding its type via the GOP/scenecut
// rule. The input frame is not retained.
func (e *Encoder) Encode(f *frame.YUV) (*EncodedFrame, error) {
	cost := e.analyzer.Analyze(f)
	dist := 0
	if e.num > 0 {
		dist = e.sinceI + 1 // distance this frame would have from last I
	}
	ft := DecideType(cost, dist, e.p)
	return e.encodeAs(f, ft, cost)
}

// EncodeForced compresses the next frame with a caller-chosen type,
// bypassing the decision rule (frame 0 must still be an I-frame).
func (e *Encoder) EncodeForced(f *frame.YUV, ft FrameType) (*EncodedFrame, error) {
	cost := e.analyzer.Analyze(f)
	if e.num == 0 && ft != FrameI {
		return nil, fmt.Errorf("codec: frame 0 must be an I-frame")
	}
	return e.encodeAs(f, ft, cost)
}

func (e *Encoder) encodeAs(f *frame.YUV, ft FrameType, cost Cost) (*EncodedFrame, error) {
	if f.W != e.p.Width || f.H != e.p.Height {
		return nil, fmt.Errorf("codec: frame %dx%d does not match stream %dx%d",
			f.W, f.H, e.p.Width, e.p.Height)
	}
	if e.recon == nil {
		e.recon = frame.NewYUV(e.p.Width, e.p.Height)
		ft = FrameI
	}
	e.w.Reset()
	// One-byte header: frame type in the top bit, quality in the low 7.
	e.w.WriteBits(uint64(ft)&1, 1)
	e.w.WriteBits(uint64(e.p.Quality), 7)

	switch ft {
	case FrameI:
		e.encodeIntra(f)
		e.sinceI = 0
	case FrameP:
		e.encodeInter(f)
		e.sinceI++
	default:
		return nil, fmt.Errorf("codec: unknown frame type %v", ft)
	}

	data := make([]byte, len(e.w.Bytes()))
	copy(data, e.w.Bytes())
	ef := &EncodedFrame{
		Number:    e.num,
		Type:      ft,
		Data:      data,
		IntraCost: cost.Intra,
		InterCost: cost.Inter,
	}
	e.num++
	return ef, nil
}

func (e *Encoder) encodeIntra(f *frame.YUV) {
	for _, pl := range []struct{ src, rec *frame.Plane }{
		{f.Y, e.recon.Y}, {f.Cb, e.recon.Cb}, {f.Cr, e.recon.Cr},
	} {
		e.bc.resetDC()
		for by := 0; by < pl.src.H; by += transform.BlockSize {
			for bx := 0; bx < pl.src.W; bx += transform.BlockSize {
				e.bc.encodeBlock(e.w, pl.src, pl.rec, bx, by, constPred)
			}
		}
	}
}

func constPred(x, y int) int32 { return intraShift }

func (e *Encoder) encodeInter(f *frame.YUV) {
	ref := e.recon
	// Luma-grid macroblock loop. Prediction planes are built per block via
	// closures over the motion vector; the recon planes are updated in place
	// after each block, which is safe because P-frames predict only from the
	// *previous* frame's recon, captured below before any writes.
	prevY := ref.Y.Clone()
	prevCb := ref.Cb.Clone()
	prevCr := ref.Cr.Clone()

	e.bc.resetDC()
	dcY, dcCb, dcCr := int32(0), int32(0), int32(0)
	pred := MV{}
	for mby := 0; mby < f.H; mby += mbSize {
		pred = MV{}
		for mbx := 0; mbx < f.W; mbx += mbSize {
			mv, sad := searchMotion(f.Y, prevY, mbx, mby, mbSize, e.p.SearchRange, pred, e.p.Search)
			if mv == (MV{}) && sad < e.p.SkipSAD {
				// Skip: decoder copies the co-located block.
				e.w.WriteBit(1)
				copyBlock(e.recon.Y, prevY, mbx, mby, mbSize, MV{})
				copyBlock(e.recon.Cb, prevCb, mbx/2, mby/2, mbSize/2, MV{})
				copyBlock(e.recon.Cr, prevCr, mbx/2, mby/2, mbSize/2, MV{})
				pred = MV{}
				continue
			}
			e.w.WriteBit(0)
			e.w.WriteSE(int64(mv.X - pred.X))
			e.w.WriteSE(int64(mv.Y - pred.Y))
			pred = mv

			// Four 8×8 luma blocks of this macroblock.
			e.bc.dcPred = dcY
			for sub := 0; sub < 4; sub++ {
				bx := mbx + (sub%2)*transform.BlockSize
				by := mby + (sub/2)*transform.BlockSize
				e.bc.encodeBlock(e.w, f.Y, e.recon.Y, bx, by, mcPred(prevY, bx, by, mv))
			}
			dcY = e.bc.dcPred
			// One 8×8 block per chroma plane, MV halved.
			cmv := MV{mv.X / 2, mv.Y / 2}
			cbx, cby := mbx/2, mby/2
			e.bc.dcPred = dcCb
			e.bc.encodeBlock(e.w, f.Cb, e.recon.Cb, cbx, cby, mcPred(prevCb, cbx, cby, cmv))
			dcCb = e.bc.dcPred
			e.bc.dcPred = dcCr
			e.bc.encodeBlock(e.w, f.Cr, e.recon.Cr, cbx, cby, mcPred(prevCr, cbx, cby, cmv))
			dcCr = e.bc.dcPred
		}
	}
}

// mcPred returns a prediction function reading the motion-compensated
// reference block at (bx+mv.X, by+mv.Y).
func mcPred(ref *frame.Plane, bx, by int, mv MV) func(x, y int) int32 {
	return func(x, y int) int32 {
		return int32(ref.At(bx+x+mv.X, by+y+mv.Y))
	}
}

func copyBlock(dst, src *frame.Plane, bx, by, size int, mv MV) {
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			dst.Set(bx+x, by+y, src.At(bx+x+mv.X, by+y+mv.Y))
		}
	}
}
