package codec

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"sieve/internal/frame"
)

// testVideo renders n frames of a noisy static background with a bright
// square that enters at frame `enter`, moves right, and leaves the scene.
func testVideo(w, h, n, enter int, seed int64) []*frame.YUV {
	rng := rand.New(rand.NewSource(seed))
	bg := frame.NewYUV(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			bg.Y.Set(x, y, byte(90+(x+y)%40))
		}
	}
	bg.Cb.Fill(120)
	bg.Cr.Fill(130)
	frames := make([]*frame.YUV, 0, n)
	for i := 0; i < n; i++ {
		f := bg.Clone()
		// Sensor noise.
		for k := 0; k < w*h/50; k++ {
			x, y := rng.Intn(w), rng.Intn(h)
			f.Y.Set(x, y, frame.Clamp(int(f.Y.At(x, y))+rng.Intn(5)-2))
		}
		if i >= enter {
			// Moving bright object.
			ox := (i - enter) * 4
			for y := h / 3; y < h/3+h/4; y++ {
				for x := ox; x < ox+w/5 && x < w; x++ {
					f.Y.Set(x, y, 230)
					f.Cb.Set(x/2, y/2, 90)
					f.Cr.Set(x/2, y/2, 170)
				}
			}
		}
		frames = append(frames, f)
	}
	return frames
}

func encodeAll(t *testing.T, p Params, frames []*frame.YUV) []*EncodedFrame {
	t.Helper()
	enc, err := NewEncoder(p)
	if err != nil {
		t.Fatalf("NewEncoder: %v", err)
	}
	out := make([]*EncodedFrame, 0, len(frames))
	for _, f := range frames {
		ef, err := enc.Encode(f)
		if err != nil {
			t.Fatalf("Encode frame %d: %v", len(out), err)
		}
		out = append(out, ef)
	}
	return out
}

func TestRoundTripQuality(t *testing.T) {
	p := Params{Width: 64, Height: 48, Quality: 85, GOPSize: 10, Scenecut: 40}
	frames := testVideo(64, 48, 20, 5, 1)
	encoded := encodeAll(t, p, frames)

	dec, err := NewDecoder(p)
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	for i, ef := range encoded {
		got, err := dec.Decode(ef.Data)
		if err != nil {
			t.Fatalf("Decode frame %d: %v", i, err)
		}
		if psnr := frame.PSNRYUV(frames[i], got); psnr < 30 {
			t.Errorf("frame %d PSNR %.1f dB < 30 dB", i, psnr)
		}
	}
}

func TestFrameZeroIsIFrame(t *testing.T) {
	p := Params{Width: 32, Height: 32, GOPSize: 100, Scenecut: 0}
	frames := testVideo(32, 32, 1, 0, 2)
	encoded := encodeAll(t, p, frames)
	if encoded[0].Type != FrameI {
		t.Fatalf("frame 0 type = %v, want I", encoded[0].Type)
	}
}

func TestGOPForcesIFrames(t *testing.T) {
	p := Params{Width: 32, Height: 32, GOPSize: 5, Scenecut: 0}
	frames := testVideo(32, 32, 16, 100, 3) // no object: only GOP boundaries
	encoded := encodeAll(t, p, frames)
	for i, ef := range encoded {
		wantI := i%5 == 0
		if (ef.Type == FrameI) != wantI {
			t.Errorf("frame %d type = %v, want I=%v", i, ef.Type, wantI)
		}
	}
}

func TestScenecutFiresOnObjectEntry(t *testing.T) {
	// The object covers ~5% of the frame; its entry pushes the inter/intra
	// cost ratio to ~0.45, so a threshold of 250 (fires at >= 0.375) must
	// catch it — the paper's observation that small objects need high
	// scenecut values.
	p := Params{Width: 64, Height: 48, GOPSize: 1000, Scenecut: 250}
	frames := testVideo(64, 48, 20, 8, 4)
	encoded := encodeAll(t, p, frames)
	// Frame 8 (object entry) must be an I-frame; quiet frames 1-7 must not.
	if encoded[8].Type != FrameI {
		t.Errorf("object-entry frame not an I-frame (costs: intra=%d inter=%d)",
			encoded[8].IntraCost, encoded[8].InterCost)
	}
	for i := 1; i < 8; i++ {
		if encoded[i].Type == FrameI {
			t.Errorf("quiet frame %d became an I-frame", i)
		}
	}
}

func TestScenecutMonotonicity(t *testing.T) {
	// Raising the threshold must never decrease the number of I-frames.
	frames := testVideo(64, 48, 30, 10, 5)
	count := func(sc float64) int {
		p := Params{Width: 64, Height: 48, GOPSize: 1000, Scenecut: sc}
		n := 0
		for _, ef := range encodeAll(t, p, frames) {
			if ef.Type == FrameI {
				n++
			}
		}
		return n
	}
	prev := -1
	for _, sc := range []float64{0, 40, 100, 200, 300, 400} {
		n := count(sc)
		if n < prev {
			t.Fatalf("scenecut %v produced %d I-frames, fewer than %d at lower threshold", sc, n, prev)
		}
		prev = n
	}
}

func TestGOPMonotonicity(t *testing.T) {
	frames := testVideo(64, 48, 40, 15, 6)
	count := func(gop int) int {
		p := Params{Width: 64, Height: 48, GOPSize: gop, Scenecut: 40}
		n := 0
		for _, ef := range encodeAll(t, p, frames) {
			if ef.Type == FrameI {
				n++
			}
		}
		return n
	}
	if count(5) < count(10) || count(10) < count(40) {
		t.Fatalf("shrinking GOP decreased I-frame count: gop5=%d gop10=%d gop40=%d",
			count(5), count(10), count(40))
	}
}

func TestIFrameIndependentDecode(t *testing.T) {
	p := Params{Width: 64, Height: 48, Quality: 90, GOPSize: 4, Scenecut: 0}
	frames := testVideo(64, 48, 12, 2, 7)
	encoded := encodeAll(t, p, frames)

	dec, err := NewDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	for i, ef := range encoded {
		full, err := dec.Decode(ef.Data)
		if err != nil {
			t.Fatalf("sequential decode %d: %v", i, err)
		}
		if ef.Type != FrameI {
			continue
		}
		solo, err := DecodeIFrame(p, ef.Data)
		if err != nil {
			t.Fatalf("DecodeIFrame %d: %v", i, err)
		}
		if !solo.Equal(full) {
			t.Errorf("frame %d: independent I-frame decode differs from sequential decode", i)
		}
	}
}

func TestDecodeIFrameRejectsPFrame(t *testing.T) {
	p := Params{Width: 32, Height: 32, GOPSize: 100, Scenecut: 0}
	frames := testVideo(32, 32, 3, 100, 8)
	encoded := encodeAll(t, p, frames)
	if encoded[1].Type != FrameP {
		t.Fatalf("expected P-frame at 1, got %v", encoded[1].Type)
	}
	if _, err := DecodeIFrame(p, encoded[1].Data); !errors.Is(err, ErrNotIFrame) {
		t.Fatalf("DecodeIFrame(P) error = %v, want ErrNotIFrame", err)
	}
}

func TestPFrameWithoutReference(t *testing.T) {
	p := Params{Width: 32, Height: 32, GOPSize: 100, Scenecut: 0}
	frames := testVideo(32, 32, 2, 100, 9)
	encoded := encodeAll(t, p, frames)
	dec, err := NewDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Decode(encoded[1].Data); !errors.Is(err, ErrNoRef) {
		t.Fatalf("decode P without ref error = %v, want ErrNoRef", err)
	}
}

func TestNoDriftOverLongGOP(t *testing.T) {
	// PSNR must not decay over a long run of P-frames: encoder and decoder
	// references must stay in lockstep.
	p := Params{Width: 64, Height: 48, Quality: 85, GOPSize: 200, Scenecut: 0}
	frames := testVideo(64, 48, 60, 5, 10)
	encoded := encodeAll(t, p, frames)
	dec, err := NewDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	var early, late float64
	for i, ef := range encoded {
		got, err := dec.Decode(ef.Data)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		psnr := frame.PSNRYUV(frames[i], got)
		if math.IsInf(psnr, 1) {
			psnr = 60
		}
		if i >= 5 && i < 20 {
			early += psnr
		}
		if i >= 45 {
			late += psnr
		}
	}
	early /= 15
	late /= 15
	if late < early-3 {
		t.Fatalf("PSNR drifted: early %.1f dB, late %.1f dB", early, late)
	}
}

func TestPFramesSmallerThanIFrames(t *testing.T) {
	p := Params{Width: 128, Height: 96, GOPSize: 30, Scenecut: 0}
	frames := testVideo(128, 96, 30, 5, 11)
	encoded := encodeAll(t, p, frames)
	var iSize, pSize, iN, pN int
	for _, ef := range encoded {
		if ef.Type == FrameI {
			iSize += len(ef.Data)
			iN++
		} else {
			pSize += len(ef.Data)
			pN++
		}
	}
	if iN == 0 || pN == 0 {
		t.Fatal("need both frame types")
	}
	avgI, avgP := iSize/iN, pSize/pN
	if avgP*3 > avgI {
		t.Fatalf("P-frames too large: avg I=%dB avg P=%dB (want P << I)", avgI, avgP)
	}
}

func TestEncodeForced(t *testing.T) {
	p := Params{Width: 32, Height: 32, GOPSize: 1000, Scenecut: 0}
	enc, err := NewEncoder(p)
	if err != nil {
		t.Fatal(err)
	}
	frames := testVideo(32, 32, 3, 100, 12)
	if _, err := enc.EncodeForced(frames[0], FrameP); err == nil {
		t.Fatal("EncodeForced(frame0, P) should fail")
	}
	ef, err := enc.EncodeForced(frames[0], FrameI)
	if err != nil || ef.Type != FrameI {
		t.Fatalf("forced I: %v %v", ef, err)
	}
	ef, err = enc.EncodeForced(frames[1], FrameI)
	if err != nil || ef.Type != FrameI {
		t.Fatalf("forced I mid-stream: %v %v", ef, err)
	}
}

func TestDecodeCorruptData(t *testing.T) {
	p := Params{Width: 32, Height: 32, GOPSize: 10, Scenecut: 0}
	dec, err := NewDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Decode(nil); err == nil {
		t.Fatal("decoding empty payload should fail")
	}
	// Truncated I-frame payload.
	frames := testVideo(32, 32, 1, 100, 13)
	encoded := encodeAll(t, p, frames)
	if _, err := dec.Decode(encoded[0].Data[:len(encoded[0].Data)/4]); err == nil {
		t.Fatal("decoding truncated payload should fail")
	}
}

func TestParamsValidation(t *testing.T) {
	bad := []Params{
		{Width: 0, Height: 32, GOPSize: 10},
		{Width: 33, Height: 32, GOPSize: 10},
		{Width: 32, Height: 32, GOPSize: 0},
		{Width: 32, Height: 32, GOPSize: 10, Quality: 101},
		{Width: 32, Height: 32, GOPSize: 10, Scenecut: 500},
		{Width: 32, Height: 32, GOPSize: 10, SearchRange: -2},
	}
	for i, p := range bad {
		if _, err := NewEncoder(p); err == nil {
			t.Errorf("params %d should be rejected: %+v", i, p)
		}
	}
	if _, err := NewEncoder(Defaults(64, 48)); err != nil {
		t.Errorf("Defaults rejected: %v", err)
	}
}

func TestFrameSizeMismatch(t *testing.T) {
	p := Params{Width: 32, Height: 32, GOPSize: 10}
	enc, err := NewEncoder(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := enc.Encode(frame.NewYUV(64, 64)); err == nil {
		t.Fatal("mismatched frame size should fail")
	}
}

func TestNonMultipleOf16Dimensions(t *testing.T) {
	// 36x28: neither a macroblock nor an 8x8 multiple in chroma.
	p := Params{Width: 36, Height: 28, Quality: 85, GOPSize: 4, Scenecut: 0}
	frames := testVideo(36, 28, 8, 2, 14)
	encoded := encodeAll(t, p, frames)
	dec, err := NewDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	for i, ef := range encoded {
		got, err := dec.Decode(ef.Data)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if got.W != 36 || got.H != 28 {
			t.Fatalf("decoded size %dx%d", got.W, got.H)
		}
		if psnr := frame.PSNRYUV(frames[i], got); psnr < 28 {
			t.Errorf("frame %d PSNR %.1f too low", i, psnr)
		}
	}
}

func TestDecideTypePure(t *testing.T) {
	p := Params{Width: 32, Height: 32, GOPSize: 100, Scenecut: 40, MinGOP: 1}
	if err := p.normalize(); err != nil {
		t.Fatal(err)
	}
	// Frame 0.
	if got := DecideType(Cost{100, 100}, 0, p); got != FrameI {
		t.Errorf("frame 0 = %v", got)
	}
	// GOP bound.
	if got := DecideType(Cost{1000, 1}, 100, p); got != FrameI {
		t.Errorf("GOP bound = %v", got)
	}
	// Low motion: P.
	if got := DecideType(Cost{1000, 10}, 5, p); got != FrameP {
		t.Errorf("low motion = %v", got)
	}
	// Inter cost ~ intra cost at scenecut 40 (bias 0.1 → fire at >= 0.9).
	if got := DecideType(Cost{1000, 950}, 5, p); got != FrameI {
		t.Errorf("high motion = %v", got)
	}
	// MinGOP suppression.
	p.MinGOP = 10
	if got := DecideType(Cost{1000, 950}, 5, p); got != FrameP {
		t.Errorf("minGOP suppression = %v", got)
	}
	// Scenecut 0 disables.
	p.MinGOP = 1
	p.Scenecut = 0
	if got := DecideType(Cost{1000, 5000}, 5, p); got != FrameP {
		t.Errorf("scenecut disabled = %v", got)
	}
}

func TestPayloadFrameType(t *testing.T) {
	p := Params{Width: 32, Height: 32, GOPSize: 3, Scenecut: 0}
	frames := testVideo(32, 32, 6, 100, 15)
	encoded := encodeAll(t, p, frames)
	for i, ef := range encoded {
		got, err := PayloadFrameType(ef.Data)
		if err != nil || got != ef.Type {
			t.Errorf("frame %d: PayloadFrameType = %v, %v; want %v", i, got, err, ef.Type)
		}
	}
	if _, err := PayloadFrameType(nil); err == nil {
		t.Error("empty payload should error")
	}
}

func TestFullSearchAtLeastAsGoodAsDiamond(t *testing.T) {
	frames := testVideo(64, 48, 2, 0, 16)
	cur, ref := frames[1].Y, frames[0].Y
	for _, pos := range [][2]int{{0, 0}, {16, 16}, {32, 16}} {
		_, dSAD := diamondSearch(cur, ref, pos[0], pos[1], 16, 16, MV{})
		_, fSAD := fullSearch(cur, ref, pos[0], pos[1], 16, 16)
		if fSAD > dSAD {
			t.Errorf("full search SAD %d worse than diamond %d at %v", fSAD, dSAD, pos)
		}
	}
}

func TestAnalyzerReplayMatchesEncoderDecisions(t *testing.T) {
	// The same decision rule applied to CostAnalyzer output must reproduce
	// the encoder's actual frame types (the tuner replay invariant).
	p := Params{Width: 64, Height: 48, GOPSize: 12, Scenecut: 180}
	frames := testVideo(64, 48, 40, 9, 17)
	encoded := encodeAll(t, p, frames)

	an := NewCostAnalyzer()
	if err := p.normalize(); err != nil {
		t.Fatal(err)
	}
	sinceI := 0
	for i, f := range frames {
		c := an.Analyze(f)
		dist := 0
		if i > 0 {
			dist = sinceI + 1
		}
		ft := DecideType(c, dist, p)
		if ft == FrameI {
			sinceI = 0
		} else {
			sinceI++
		}
		if ft != encoded[i].Type {
			t.Fatalf("frame %d: replay %v, encoder %v", i, ft, encoded[i].Type)
		}
	}
}

func TestDownsample2x(t *testing.T) {
	p := frame.NewPlane(4, 4)
	vals := []byte{
		10, 20, 30, 40,
		10, 20, 30, 40,
		50, 50, 60, 60,
		50, 50, 60, 60,
	}
	copy(p.Pix, vals)
	d := Downsample2x(p)
	if d.W != 2 || d.H != 2 {
		t.Fatalf("dims %dx%d", d.W, d.H)
	}
	if d.At(0, 0) != 15 || d.At(1, 0) != 35 || d.At(0, 1) != 50 || d.At(1, 1) != 60 {
		t.Fatalf("downsample values: %v", d.Pix)
	}
}

func BenchmarkEncodeP64x48(b *testing.B) {
	p := Params{Width: 64, Height: 48, GOPSize: 1 << 20, Scenecut: 0}
	frames := testVideo(64, 48, 2, 100, 18)
	enc, err := NewEncoder(p)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := enc.Encode(frames[0]); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Encode(frames[1]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeI64x48(b *testing.B) {
	p := Params{Width: 64, Height: 48, GOPSize: 10, Scenecut: 0}
	enc, err := NewEncoder(p)
	if err != nil {
		b.Fatal(err)
	}
	frames := testVideo(64, 48, 1, 0, 19)
	ef, err := enc.Encode(frames[0])
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeIFrame(p, ef.Data); err != nil {
			b.Fatal(err)
		}
	}
}

func TestForceNextIOverridesDecision(t *testing.T) {
	// Quiet scene, huge GOP: without forcing, every frame after 0 is a P.
	p := Params{Width: 32, Height: 32, GOPSize: 100, Scenecut: 0}
	frames := testVideo(32, 32, 10, 100, 6)
	enc, err := NewEncoder(p)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	var ef EncodedFrame
	for i, f := range frames {
		if i == 4 {
			enc.ForceNextI()
		}
		if err := enc.EncodeInto(f, &ef); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		wantI := i == 0 || i == 4
		if (ef.Type == FrameI) != wantI {
			t.Errorf("frame %d type = %v, want I=%v", i, ef.Type, wantI)
		}
		// The forced I-frame stream must stay decodable end to end.
		if _, err := dec.Decode(ef.Data); err != nil {
			t.Fatalf("decode frame %d: %v", i, err)
		}
	}
	// The flag is one-shot and resets the GOP distance: frame 4+GOPSize
	// would be the next scheduled I, nothing before it.
	if enc.sinceI != len(frames)-1-4 {
		t.Fatalf("sinceI = %d after forced I at 4, want %d", enc.sinceI, len(frames)-1-4)
	}
}
