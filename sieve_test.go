package sieve

import (
	"context"
	"testing"

	"sieve/internal/container"
	"sieve/internal/synth"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	// Quickstart flow: dataset → tune → encode → seek → decode I-frames.
	seconds := 20
	if testing.Short() {
		seconds = 8 // same flow, less footage
	}
	v, err := LoadDataset(synth.JacksonSquare, seconds, 5)
	if err != nil {
		t.Fatal(err)
	}
	best, err := Tune(context.Background(), v, DefaultSweep())
	if err != nil {
		t.Fatal(err)
	}
	spec := v.Spec()
	var buf container.Buffer
	enc, err := NewSemanticEncoder(&buf, TunedParams(spec.Width, spec.Height, best.Config), spec.FPS)
	if err != nil {
		t.Fatal(err)
	}
	iCount := 0
	for i := 0; i < v.NumFrames(); i++ {
		ef, err := enc.Encode(v.Frame(i))
		if err != nil {
			t.Fatal(err)
		}
		if ef.Type == FrameI {
			iCount++
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenStream(&buf, buf.Size())
	if err != nil {
		t.Fatal(err)
	}
	seeker := NewIFrameSeeker(r)
	ifr := seeker.IFrames()
	if len(ifr) != iCount {
		t.Fatalf("seeker found %d I-frames, encoder wrote %d", len(ifr), iCount)
	}
	if seeker.FilterRate() <= 0.5 {
		t.Fatalf("filter rate %.3f too low", seeker.FilterRate())
	}
	img, err := seeker.DecodeIFrame(ifr[0])
	if err != nil {
		t.Fatal(err)
	}
	if img.W != spec.Width || img.H != spec.Height {
		t.Fatalf("decoded %dx%d", img.W, img.H)
	}
}

func TestDatasetsList(t *testing.T) {
	if len(Datasets()) != 5 {
		t.Fatalf("datasets = %d", len(Datasets()))
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams(640, 400)
	if p.GOPSize != 250 || p.Scenecut != 40 {
		t.Fatalf("defaults = %+v", p)
	}
}
