// Edgecloud: the 3-tier deployment comparison of Section V-B on one feed —
// prepare a semantically encoded asset, measure this machine's own
// micro-costs, and model all five deployments over the paper's 30 Mbps WAN.
package main

import (
	"context"
	"fmt"
	"log"

	"sieve/internal/pipeline"
	"sieve/internal/synth"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	fmt.Println("preparing asset (render → tune → encode twice → price baselines)...")
	asset, err := pipeline.PrepareAsset(ctx, synth.JacksonSquare, pipeline.AssetOpts{
		Seconds: 40, FPS: 10, TrainSeconds: 60,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("asset: %d frames, %d I-frames, semantic %d B, default %d B\n",
		asset.NumFrames, len(asset.IFrames),
		asset.Semantic.PayloadBytes(nil), asset.Default.PayloadBytes(nil))

	costs, err := pipeline.MeasureCosts(asset, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured: seek %v/frame, decode %v/frame, NN %v/frame\n\n",
		costs.Seek, costs.DecodeP, costs.NN)

	cluster := pipeline.DefaultCluster()
	costMap := map[string]pipeline.MicroCosts{asset.Name: costs}
	fmt.Printf("%-26s %10s %14s %12s %s\n", "method", "fps", "edge→cloud", "makespan", "bottleneck")
	for _, m := range pipeline.AllMethods() {
		rep, err := pipeline.Evaluate(ctx, m, []*pipeline.VideoAsset{asset}, costMap, cluster, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s %10.0f %11.2f MB %12v %s\n",
			rep.Method, rep.Throughput, float64(rep.EdgeCloudBytes)/1e6,
			rep.Makespan.Round(1e6), rep.Bottleneck)
	}
	fmt.Println("\nThe 3-tier I-frame deployment filters at the edge and infers in the")
	fmt.Println("cloud — highest throughput with a fraction of the WAN traffic.")
}
