// Nnsplit: the paper's NN Deployment service (contribution 1b) — profile
// the reference detector layer by layer and pick the latency-minimising
// edge/cloud split for several WAN bandwidths, Neurosurgeon-style.
package main

import (
	"fmt"
	"log"

	"sieve/internal/nn"
)

func main() {
	log.SetFlags(0)
	det := nn.NewYOLite([]string{"car", "bus", "truck", "person", "boat"}, 300)
	net := det.Network()

	fmt.Println("YOLite layer profile:")
	fmt.Print(net.Summary())

	// The edge desktop sustains ~1 GFLOP/s on this workload; the cloud
	// Xeon ~3x that (the paper's two tiers). The input is a compressed
	// 300x300 I-frame (~25 kB).
	const inputBytes = 25_000
	for _, mbps := range []float64{1, 10, 30, 100, 1000} {
		env := nn.Env{
			EdgeFLOPS:    1e9,
			CloudFLOPS:   3e9,
			BandwidthBps: mbps * 1e6,
			InputBytes:   inputBytes,
		}
		p := nn.Partition(net, env)
		where := "all cloud"
		switch {
		case p.SplitAfter == len(net.Layers)-1:
			where = "all edge"
		case p.SplitAfter >= 0:
			where = fmt.Sprintf("split after %s", net.Layers[p.SplitAfter].Name())
		}
		fmt.Printf("%7.0f Mbps: %-24s latency %8v (edge %v + wan %v + cloud %v, ships %d B)\n",
			mbps, where, p.Latency.Round(1e5),
			p.EdgeTime.Round(1e5), p.TransferTime.Round(1e5), p.CloudTime.Round(1e5),
			p.TransferBytes)
	}
	fmt.Println("\nFat pipes ship the input to the fast cloud; thin pipes push layers to")
	fmt.Println("the edge until only the tiny class grid crosses the WAN.")
	_ = log.Flags
}
