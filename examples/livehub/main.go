// Livehub: run three concurrent camera feeds — a synthetic render, an SVF
// replay paced at capture rate, and a programmatic push feed — through one
// streaming Hub, consuming the merged typed-event stream while a detector
// labels I-frames on the fly. Virtual clocks make the whole demo instant
// and deterministic.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"sieve"
	"sieve/internal/container"
	"sieve/internal/synth"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()
	const seconds, fps = 4, 5

	hub := sieve.NewHub(sieve.WithWorkers(3))

	// Feed 1: a live synthetic camera, rendered one frame at a time. A
	// detector labels each I-frame as it is selected.
	cam, err := sieve.OpenSynthSource(synth.JacksonSquare, seconds, fps)
	if err != nil {
		log.Fatal(err)
	}
	det := sieve.NewDetector([]string{"car", "bus", "truck", "person", "boat"}, 96)
	if _, err := hub.Add("jackson-live", cam,
		sieve.WithDetector(det), sieve.WithClock(sieve.NewVirtualClock(time.Unix(0, 0)))); err != nil {
		log.Fatal(err)
	}

	// Feed 2: yesterday's recording, replayed at capture rate on a virtual
	// clock (instant, but timestamped exactly like a live feed).
	recVideo, err := sieve.LoadDataset(synth.CoralReef, seconds, fps)
	if err != nil {
		log.Fatal(err)
	}
	var rec container.Buffer
	if _, err := sieve.EncodeStream(ctx, sieve.NewSynthSource(recVideo), &rec); err != nil {
		log.Fatal(err)
	}
	r, err := sieve.OpenStream(&rec, rec.Size())
	if err != nil {
		log.Fatal(err)
	}
	clock := sieve.NewVirtualClock(time.Unix(0, 0))
	replay, err := sieve.NewReplaySource(r, sieve.PacedBy(clock))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := hub.Add("coral-replay", replay, sieve.WithClock(clock)); err != nil {
		log.Fatal(err)
	}

	// Feed 3: frames pushed programmatically (an RTSP adapter would sit
	// here); the producer drives, the session pulls with backpressure.
	pushVideo, err := sieve.LoadDataset(synth.Amsterdam, seconds, fps)
	if err != nil {
		log.Fatal(err)
	}
	spec := pushVideo.Spec()
	push := sieve.NewPushSource("amsterdam-push", spec.Width, spec.Height, spec.FPS, 8)
	if _, err := hub.Add("amsterdam-push", push,
		sieve.WithClock(sieve.NewVirtualClock(time.Unix(0, 0)))); err != nil {
		log.Fatal(err)
	}
	go func() {
		for i := 0; i < pushVideo.NumFrames(); i++ {
			if err := push.Push(ctx, pushVideo.Frame(i)); err != nil {
				return
			}
		}
		push.Close(nil)
	}()

	// Consume the merged event stream while the hub runs.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range hub.Events() {
			switch ev.Kind {
			case sieve.EventIFrame:
				fmt.Printf("[%s] I-frame at frame %d (%d bytes)\n", ev.Feed, ev.Frame, ev.Bytes)
			case sieve.EventDetection:
				fmt.Printf("[%s] detector saw %q at frame %d\n", ev.Feed, ev.Labels, ev.Frame)
			}
		}
	}()
	if err := hub.Run(ctx); err != nil {
		log.Fatal(err)
	}
	<-done

	st := hub.Snapshot()
	fmt.Printf("\n%-16s %8s %8s %12s %10s\n", "feed", "frames", "iframes", "filter-rate", "bytes")
	for _, f := range st.Feeds {
		fmt.Printf("%-16s %8d %8d %12.4f %10d\n",
			f.Feed, f.Frames, f.IFrames, f.FilterRate(), f.PayloadBytes)
	}
	fmt.Printf("aggregate: %d frames, filter rate %.4f — only %d of %d frames would ever reach the NN\n",
		st.Frames, st.FilterRate(), st.IFrames, st.Frames)
}
