// Quickstart: encode a synthetic surveillance clip with tuned semantic
// parameters, then analyse it by seeking I-frames only — the core SiEVE
// loop in ~60 lines.
package main

import (
	"context"
	"fmt"
	"log"

	"sieve"
	"sieve/internal/container"
	"sieve/internal/synth"
)

func main() {
	log.SetFlags(0)

	// 1. A minute of the Jackson Square feed (synthetic stand-in, with
	//    exact ground-truth labels).
	video, err := sieve.LoadDataset(synth.JacksonSquare, 60, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d frames, %d ground-truth events\n",
		video.NumFrames(), len(video.Events()))

	// 2. Offline tuning: find the (GOP, scenecut) pair whose I-frames land
	//    on event boundaries.
	best, err := sieve.Tune(context.Background(), video, sieve.DefaultSweep())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tuned:   %s  (acc %.1f%%, sampling %.2f%%, F1 %.1f%%)\n",
		best.Config, 100*best.Acc, 100*best.SS, 100*best.F1)

	// 3. Encode the stream with the tuned parameters.
	spec := video.Spec()
	var buf container.Buffer
	enc, err := sieve.NewSemanticEncoder(&buf,
		sieve.TunedParams(spec.Width, spec.Height, best.Config), spec.FPS)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < video.NumFrames(); i++ {
		if _, err := enc.Encode(video.Frame(i)); err != nil {
			log.Fatal(err)
		}
	}
	if err := enc.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encoded: %d bytes\n", buf.Size())

	// 4. Analyse by seeking I-frames only: no P-frame is ever decoded.
	r, err := sieve.OpenStream(&buf, buf.Size())
	if err != nil {
		log.Fatal(err)
	}
	seeker := sieve.NewIFrameSeeker(r)
	ifr := seeker.IFrames()
	fmt.Printf("seeker:  %d I-frames of %d frames (%.1f%% filtered)\n",
		len(ifr), r.NumFrames(), 100*seeker.FilterRate())
	for _, m := range ifr[:min(3, len(ifr))] {
		img, err := seeker.DecodeIFrame(m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  decoded I-frame %d independently (%dx%d) — GT labels: %q\n",
			m.Index, img.W, img.H, video.Labels(m.Index).Key())
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
