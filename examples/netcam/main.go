// Netcam: the network ingest plane end to end on one machine — a hub
// serves an SVWP listener on a loopback TCP port while three camera
// pushers stream raw frames to it concurrently, one of them through a
// flaky connection that drops mid-stream and resumes from its last
// acked I-frame. The server report shows the reconnect healed with no
// frame loss: every feed stores its full stream.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"sieve"
	"sieve/internal/synth"
)

// flakyConn drops the connection after budget bytes of writes,
// simulating a camera's uplink cutting out mid-stream.
type flakyConn struct {
	net.Conn
	mu     sync.Mutex
	budget int
}

func (c *flakyConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.budget <= 0 {
		c.Conn.Close()
		return 0, fmt.Errorf("uplink dropped")
	}
	if len(p) > c.budget {
		p = p[:c.budget]
	}
	n, err := c.Conn.Write(p)
	c.budget -= n
	return n, err
}

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	lst := sieve.NewIngestListener(ln, sieve.WithExpectedFeeds(3))
	hub := sieve.NewHub(sieve.WithListener(lst))
	go func() {
		for range hub.Events() {
		}
	}()
	runErr := make(chan error, 1)
	go func() { runErr <- hub.Run(ctx) }()
	addr := lst.Addr().String()
	fmt.Printf("ingest plane on %s, waiting for 3 cameras\n", addr)

	presets := []synth.PresetName{synth.JacksonSquare, synth.CoralReef, synth.Amsterdam}
	var wg sync.WaitGroup
	for i, preset := range presets {
		v, err := synth.Preset(preset, synth.PresetOpts{Seconds: 2, FPS: 5})
		if err != nil {
			log.Fatal(err)
		}
		flaky := i == 0 // first camera's uplink dies mid-stream
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := sieve.NewPusher(sieve.NewSynthSource(v),
				sieve.WithPusherBackoff(50*time.Millisecond, 500*time.Millisecond, 5))
			// RunRetry owns the redial loop: dropped connections RESUME
			// from the server's cursor after a capped backoff, and only
			// consecutive fruitless attempts spend the budget.
			err := p.RunRetry(ctx, func(ctx context.Context) (net.Conn, error) {
				var d net.Dialer
				nc, err := d.DialContext(ctx, "tcp", addr)
				if err == nil && flaky {
					// Enough budget for the handshake plus a few frames.
					info := v.Spec()
					flaky = false
					nc = &flakyConn{Conn: nc, budget: 4 * info.Width * info.Height}
				}
				return nc, err
			})
			if err != nil {
				log.Fatal(err)
			}
			st := p.Stats()
			fmt.Printf("%-16s pushed %2d frames, %d connections, %d reconnects, close %s\n",
				v.Spec().Name, st.FramesSent, st.Attempts, st.Reconnects, st.CloseReason)
		}()
	}
	wg.Wait()
	if err := <-runErr; err != nil {
		log.Fatal(err)
	}

	st := hub.Snapshot()
	fmt.Printf("\nserver: %d feeds, %d frames stored\n", len(st.Feeds), st.Frames)
	for _, f := range st.Feeds {
		fmt.Printf("  %-16s %2d frames, %d I-frames, filter rate %.2f\n",
			f.Feed, f.Frames, f.IFrames, f.FilterRate())
	}
	in := st.Ingest
	fmt.Printf("ingest: %d reconnects, %d frames received, %d duplicates, %d skipped\n",
		in.Reconnects, in.FramesReceived, in.Duplicates, in.Skipped)
}
