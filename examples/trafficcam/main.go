// Trafficcam: the full per-camera workflow of the paper's Figure 1 —
// offline tuning on historical labelled video, a lookup table entry, then
// online semantic encoding and event detection on a new day's feed, scored
// against ground truth and compared with the untuned default parameters.
package main

import (
	"context"
	"fmt"
	"log"

	"sieve/internal/labels"
	"sieve/internal/synth"
	"sieve/internal/tuner"
)

func main() {
	log.SetFlags(0)
	const camera = "jackson_square"

	// ---- Offline (the operator runs this once per camera) ----
	history, err := synth.Preset(synth.JacksonSquare, synth.PresetOpts{
		Seconds: 120, FPS: 10, Seed: 1, // yesterday's labelled footage
	})
	if err != nil {
		log.Fatal(err)
	}
	best, err := tuner.Tune(context.Background(), history, history.Track(), tuner.DefaultSweep())
	if err != nil {
		log.Fatal(err)
	}
	table := tuner.NewLookupTable()
	table.Set(camera, best.Config)
	fmt.Printf("offline tuning on %d frames: best %s (train F1 %.1f%%)\n",
		history.NumFrames(), best.Config, 100*best.F1)

	// ---- Online (each day's new video uses the stored parameters) ----
	today, err := synth.Preset(synth.JacksonSquare, synth.PresetOpts{
		Seconds: 120, FPS: 10, // different schedule, same camera
	})
	if err != nil {
		log.Fatal(err)
	}
	cfg, _ := table.Get(camera)
	costs := tuner.AnalyzeCosts(today)
	track := today.Track()

	tuned := tuner.Evaluate(track,
		tuner.ReplayPlacement(costs, cfg, tuner.DefaultMinGOP), cfg)
	def := tuner.Evaluate(track,
		tuner.ReplayPlacement(costs, tuner.DefaultConfig(), 1), tuner.DefaultConfig())

	fmt.Printf("\n%-22s %8s %8s %8s %9s\n", "configuration", "acc", "sampled", "F1", "I-frames")
	fmt.Printf("%-22s %7.1f%% %7.2f%% %7.1f%% %9d\n",
		"semantic "+cfg.String(), 100*tuned.Acc, 100*tuned.SS, 100*tuned.F1, tuned.IFrames)
	fmt.Printf("%-22s %7.1f%% %7.2f%% %7.1f%% %9d\n",
		"default gop=250 sc=40", 100*def.Acc, 100*def.SS, 100*def.F1, def.IFrames)

	// How many true events does each sampling catch?
	fmt.Printf("\nevent recall: semantic %.0f%%, default %.0f%% (of %d events)\n",
		100*labels.EventRecall(track, tuned.Samples),
		100*labels.EventRecall(track, def.Samples),
		len(labels.Events(track)))
}
