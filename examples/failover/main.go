// Failover: elastic cluster survival, end to end.
//
// A four-camera fleet is sharded across three edge sites; a scripted
// fault plan kills one site mid-run. The cloud coordinator detects the
// dead site through missed heartbeats, re-shards its orphaned feed onto a
// survivor, and the survivor resumes the feed from the crashed site's
// EdgeStore replica at an I-frame boundary — re-detecting everything the
// crash may have lost. Meanwhile every site streams incremental
// results-DB deltas upstream, so the cloud view is queryable while the
// run is still in flight.
//
// The punchline is printed last: the merged results database of the
// crashed run is byte-identical to a fault-free run of the same fleet.
// Deterministic fault injection (frame-count triggers, virtual clocks,
// fixed seeds) is what makes that comparison exact rather than
// statistical.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"time"

	"sieve"
	"sieve/internal/frame"
	"sieve/internal/nn"
	"sieve/internal/synth"
)

// scene renders one small deterministic camera: a car crossing a noisy
// background, entering at a per-camera time so event I-frames land in
// different places on every feed.
func scene(seed uint64, enter int) *sieve.Dataset {
	v, err := synth.New(synth.Spec{
		Name: "cam", Width: 128, Height: 80, FPS: 5, NumFrames: 36,
		NoiseAmp: 1,
		Objects: []synth.Object{{
			Class: synth.Car, Enter: enter, Exit: enter + 12, Lane: 0.7, Speed: 16,
			Scale: 0.3, Color: frame.RGB{R: 200, G: 40, B: 40}, Seed: seed,
		}},
		Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	return v
}

var cams = []struct {
	name  string
	seed  uint64
	enter int
}{
	{"cam-north", 1, 6}, {"cam-south", 2, 10},
	{"cam-east", 3, 14}, {"cam-west", 4, 8},
}

// runFleet runs the fleet once, optionally under a fault script, and
// returns the merged results database bytes plus the run's stats.
func runFleet(det *sieve.Detector, faults string) ([]byte, sieve.ClusterStats) {
	opts := []sieve.ClusterOption{
		sieve.WithSharder(sieve.ShardRoundRobin()),
		// Ship a delta upstream after every detection: the cloud view
		// trails each site's shard by at most one detection.
		sieve.WithDeltaSync(1, 4),
	}
	if faults != "" {
		plan, err := sieve.ParseFaultPlan(faults)
		if err != nil {
			log.Fatal(err)
		}
		opts = append(opts, sieve.WithFaultPlan(plan))
	}
	c, err := sieve.NewCluster(3, opts...)
	if err != nil {
		log.Fatal(err)
	}
	for _, cam := range cams {
		if _, _, err := c.AddFeed(cam.name, sieve.NewSynthSource(scene(cam.seed, cam.enter)),
			sieve.WithClock(sieve.NewVirtualClock(time.Unix(0, 0).UTC())),
			sieve.WithDetector(det),
			sieve.WithTunedParams(sieve.EncoderParams{Width: 128, Height: 80, GOPSize: 20, Scenecut: 200, MinGOP: 2}),
		); err != nil {
			log.Fatal(err)
		}
	}

	// Drain events and probe the cloud mid-run: every few detections, ask
	// the coordinator's live view how much of the fleet it can already
	// answer for. This is the streamed-delta plane at work — no site has
	// submitted its final shard yet.
	done := make(chan struct{})
	go func() {
		defer close(done)
		seen := 0
		for ev := range c.Events() {
			if ev.Kind != sieve.EventDetection {
				continue
			}
			seen++
			if faults != "" && seen%4 == 0 {
				if view, err := c.View(); err == nil {
					fmt.Printf("  mid-run cloud view after %2d detections: %2d entries queryable\n",
						seen, view.Len())
				}
			}
		}
	}()
	if err := c.Run(context.Background()); err != nil {
		log.Fatal(err)
	}
	<-done

	merged, err := c.Merged()
	if err != nil {
		log.Fatal(err)
	}
	data, err := merged.MarshalIndent()
	if err != nil {
		log.Fatal(err)
	}
	return data, c.Snapshot()
}

func main() {
	log.SetFlags(0)

	// One small detector serves the fleet; trained on an independent clip
	// with fixed seeds so both runs see the identical model.
	train := scene(99, 4)
	var lab []nn.LabeledFrame
	for i := 0; i < train.NumFrames(); i++ {
		lf := nn.LabeledFrame{Frame: train.Frame(i)}
		for _, b := range train.Boxes(i) {
			lf.Boxes = append(lf.Boxes, nn.ObjectBox{Class: string(b.Class), X: b.X, Y: b.Y, W: b.W, H: b.H})
		}
		lab = append(lab, lf)
	}
	det := sieve.NewDetector([]string{"car"}, 64)
	if _, err := det.Train(lab, nn.TrainConfig{Seed: 5, Epochs: 8}); err != nil {
		log.Fatal(err)
	}

	fmt.Println("fault-free baseline run:")
	baseline, _ := runFleet(det, "")
	fmt.Printf("  merged results database: %d bytes\n\n", len(baseline))

	// Kill site1 after cam-south has encoded 12 frames. Its feed fails
	// over to a survivor and resumes from the EdgeStore replica.
	script := "crash:site1:cam-south@12"
	fmt.Printf("chaos run with fault script %q:\n", script)
	survived, st := runFleet(det, script)

	fmt.Printf("\n  %d crash, %d feed(s) migrated, %d lost, %d frames replayed, %d delta syncs\n",
		st.Crashes, st.MigratedFeeds, st.LostFeeds, st.ReplayedFrames, st.DeltaSyncs)
	for _, fo := range st.Failovers {
		fmt.Printf("  failover: %-9s %s -> %s, resumed at I-frame boundary %d (%d frames replayed)\n",
			fo.Feed, fo.From, fo.To, fo.ResumeFrame, fo.ReplayedFrames)
	}
	for _, d := range st.Degraded {
		fmt.Printf("  degraded: %s — %s\n", d.Site, d.Reason)
	}

	if bytes.Equal(baseline, survived) {
		fmt.Println("\nzero frame loss: merged results are byte-identical to the fault-free run")
	} else {
		log.Fatal("merged results diverged from the fault-free baseline")
	}
}
