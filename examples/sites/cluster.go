package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"sieve"
	"sieve/internal/frame"
	"sieve/internal/nn"
	"sieve/internal/synth"
)

// scene renders one small deterministic camera: a car crossing a noisy
// background, with per-camera seed and timing (event I-frames land in
// different places on every camera).
func scene(seed uint64, enter int) *sieve.Dataset {
	v, err := synth.New(synth.Spec{
		Name: "cam", Width: 128, Height: 80, FPS: 5, NumFrames: 40,
		NoiseAmp: 1,
		Objects: []synth.Object{{
			Class: synth.Car, Enter: enter, Exit: enter + 14, Lane: 0.7, Speed: 16,
			Scale: 0.3, Color: frame.RGB{R: 200, G: 40, B: 40}, Seed: seed,
		}},
		Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	return v
}

// runCluster is act two: the same Figure 1 split, but scaled out — four
// cameras sharded across two edge sites (load-aware placement), each site
// a hub with its own results-database shard and edge store, detections
// shipped over metered uplinks, and the cloud merging the shards into one
// global view that answers cross-camera queries.
func runCluster() {
	// One small detector serves the fleet: its head is trained (fast,
	// deterministic) on an independent clip of the same scene family.
	train := scene(99, 4)
	var lab []nn.LabeledFrame
	for i := 0; i < train.NumFrames(); i++ {
		lf := nn.LabeledFrame{Frame: train.Frame(i)}
		for _, b := range train.Boxes(i) {
			lf.Boxes = append(lf.Boxes, nn.ObjectBox{Class: string(b.Class), X: b.X, Y: b.Y, W: b.W, H: b.H})
		}
		lab = append(lab, lf)
	}
	det := sieve.NewDetector([]string{"car"}, 64)
	if _, err := det.Train(lab, nn.TrainConfig{Seed: 5, Epochs: 8}); err != nil {
		log.Fatal(err)
	}

	c, err := sieve.NewCluster(2, sieve.WithSharder(sieve.ShardLeastBusy()))
	if err != nil {
		log.Fatal(err)
	}
	cams := []struct {
		name  string
		seed  uint64
		enter int
	}{
		{"garage-north", 1, 6}, {"garage-south", 2, 12},
		{"lot-east", 3, 18}, {"lot-west", 4, 9},
	}
	for _, cam := range cams {
		_, site, err := c.AddFeed(cam.name, sieve.NewSynthSource(scene(cam.seed, cam.enter)),
			sieve.WithClock(sieve.NewVirtualClock(time.Unix(0, 0).UTC())),
			sieve.WithDetector(det),
			sieve.WithTunedParams(sieve.EncoderParams{Width: 128, Height: 80, GOPSize: 20, Scenecut: 200, MinGOP: 2}))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("placed %-13s on %s\n", cam.name, site)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for range c.Events() {
		}
	}()
	if err := c.Run(context.Background()); err != nil {
		log.Fatal(err)
	}
	<-done

	st := c.Snapshot()
	for _, ss := range st.Sites {
		fmt.Printf("%s: %d feeds, %d frames, %d I-frames, %d payload bytes kept on site, %d bytes up the WAN\n",
			ss.Site, len(ss.Hub.Feeds), ss.Hub.Frames, ss.Hub.IFrames, ss.Hub.PayloadBytes, ss.UplinkBytes)
	}
	merged, err := c.Merged()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cloud merge: %d cameras, %d entries, cluster filter rate %.4f\n",
		len(merged.Cameras()), merged.Len(), st.FilterRate())

	// The merged view serves cross-camera queries; the edge stores still
	// hold the full streams for post-event analysis, wherever they live.
	for _, cam := range cams {
		hits, err := c.Query(cam.name, "car", 0, 40)
		if err != nil {
			log.Fatal(err)
		}
		if len(hits) == 0 {
			continue
		}
		m, site, err := c.SeekEvent(cam.name, hits[0])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query car@%-13s -> %d propagated frames; replay starts at I-frame %d on %s\n",
			cam.name, len(hits), m.Index, site)
	}
}
