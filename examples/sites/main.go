// Sites: multi-site SiEVE in two acts.
//
// Act one is the live (non-modelled) 3-tier dataflow of Figure 1 — a
// camera engine encodes frames semantically, an edge engine seeks I-frames
// and decodes them, a cloud engine runs detection; the sites are bridged
// over metered links by the Echo-like orchestrator. Every byte crossing
// each hop is accounted.
//
// Act two scales the edge out with the public Cluster API: four cameras
// sharded across two edge sites (each with its own pool, results-DB shard
// and edge store), detections shipped over per-site metered uplinks, and a
// cloud coordinator merging the shards into one global view that answers
// cross-camera queries and locates replay GOPs wherever they are stored.
package main

import (
	"context"
	"fmt"
	"log"
	"strconv"
	"sync/atomic"

	"sieve/internal/codec"
	"sieve/internal/dataflow"
	"sieve/internal/deploy"
	"sieve/internal/simnet"
	"sieve/internal/synth"
	"sieve/internal/tuner"
)

func main() {
	log.SetFlags(0)
	video, err := synth.Preset(synth.JacksonSquare, synth.PresetOpts{Seconds: 20, FPS: 10})
	if err != nil {
		log.Fatal(err)
	}
	spec := video.Spec()
	enc, err := codec.NewEncoder(codec.Params{
		Width: spec.Width, Height: spec.Height, Quality: 85,
		GOPSize: 50, Scenecut: 200, MinGOP: tuner.DefaultMinGOP,
	})
	if err != nil {
		log.Fatal(err)
	}

	// --- camera site: render + semantic encode ---
	camera := dataflow.NewEngine("camera")
	i := 0
	src := dataflow.SourceFunc(func() (*dataflow.FlowFile, error) {
		if i >= video.NumFrames() {
			return nil, dataflow.ErrEndOfStream
		}
		ef, err := enc.Encode(video.Frame(i))
		if err != nil {
			return nil, err
		}
		i++
		return dataflow.NewFlowFile(ef.Data, map[string]string{
			"frame": strconv.Itoa(ef.Number),
			"type":  ef.Type.String(),
		}), nil
	})
	must(camera.AddSource("encoder", src))
	relay := dataflow.ProcessorFunc(func(f *dataflow.FlowFile, emit dataflow.Emitter) error {
		emit("", f)
		return nil
	})
	must(camera.AddProcessor("uplink", relay))
	must(camera.Connect("encoder", "", "uplink"))

	// --- edge site: I-frame seeker (drops P payloads without decoding) ---
	edge := dataflow.NewEngine("edge")
	var dropped atomic.Int64
	seeker := dataflow.ProcessorFunc(func(f *dataflow.FlowFile, emit dataflow.Emitter) error {
		if f.Attrs["type"] != "I" {
			dropped.Add(1)
			return nil
		}
		emit("", f)
		return nil
	})
	must(edge.AddProcessor("seeker", seeker))

	// --- cloud site: decode the I-frame and "detect" ---
	cloud := dataflow.NewEngine("cloud")
	var analysed atomic.Int64
	params := codec.Params{Width: spec.Width, Height: spec.Height, Quality: 85, GOPSize: 50}
	nn := dataflow.ProcessorFunc(func(f *dataflow.FlowFile, _ dataflow.Emitter) error {
		img, err := codec.DecodeIFrame(params, f.Content)
		if err != nil {
			return err
		}
		_ = img
		analysed.Add(1)
		return nil
	})
	must(cloud.AddProcessor("detector", nn))

	// --- orchestrate over metered links ---
	topo := simnet.NewPaperTopology()
	o := deploy.NewOrchestrator()
	mustV(o.AddSite("camera", camera))
	mustV(o.AddSite("edge", edge))
	mustV(o.AddSite("cloud", cloud))
	must(o.Bridge("camera", "uplink", "", "edge", "seeker", topo.CameraToEdge))
	must(o.Bridge("edge", "seeker", "", "cloud", "detector", topo.EdgeToCloud))

	if err := o.Run(context.Background()); err != nil {
		log.Fatal(err)
	}

	c2e, _, _ := topo.CameraToEdge.Stats()
	e2c, _, e2cBusy := topo.EdgeToCloud.Stats()
	fmt.Printf("frames:       %d total, %d analysed in cloud, %d P-frames dropped at edge\n",
		video.NumFrames(), analysed.Load(), dropped.Load())
	fmt.Printf("camera→edge:  %.2f MB\n", float64(c2e)/1e6)
	fmt.Printf("edge→cloud:   %.2f MB (%.1fx reduction), %.1fs of 30 Mbps WAN time saved\n",
		float64(e2c)/1e6, float64(c2e)/float64(e2c),
		(topo.EdgeToCloud.TransferTime(c2e) - e2cBusy).Seconds())

	fmt.Println("\n--- act two: sharded edge sites + cloud results merge ---")
	runCluster()
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func mustV[T any](_ T, err error) {
	if err != nil {
		log.Fatal(err)
	}
}
