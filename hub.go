package sieve

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"sieve/internal/runner"
	"sieve/internal/telemetry"
)

// Lifecycle errors shared by Hub and Cluster. They are wrapped with
// context (which hub/cluster, which feed), so match with errors.Is.
var (
	// ErrStarted is returned by Hub.Add and Cluster.AddFeed once Run has
	// been called: the feed set is frozen at Run.
	ErrStarted = errors.New("feeds cannot be added after Run has started")
	// ErrNoFeeds is returned by Run on a hub or cluster with no feeds —
	// running an empty topology is almost always a wiring bug, so it is an
	// error, not a silent no-op.
	ErrNoFeeds = errors.New("no feeds")
	// ErrAlreadyRun is returned by a second Run call: hubs and clusters are
	// single-shot (their sessions cannot be rewound).
	ErrAlreadyRun = errors.New("Run already called")
)

// HubOption configures a Hub.
type HubOption func(*Hub)

// WithWorkers bounds how many feeds run concurrently (default GOMAXPROCS).
func WithWorkers(n int) HubOption {
	return func(h *Hub) { h.pool = runner.New(n) }
}

// WithHubBuffer sets the merged event channel capacity (default 256).
func WithHubBuffer(n int) HubOption {
	return func(h *Hub) {
		if n > 0 {
			h.bufSize = n
		}
	}
}

// WithHubInference gives the hub one shared batched-inference plane: every
// feed added afterwards routes its I-frame detections through it, so up to
// batchSize frames from concurrent feeds share a single YOLite forward
// pass. Results are byte-identical to per-feed WithDetector (the batched
// forward is element-identical per frame); only the amortisation changes —
// see HubStats.Inference. A feed's own WithInferencePlane overrides the
// hub plane; combining the hub plane with per-feed WithDetector is a
// configuration error surfaced by Add.
//
// Flushes are count-based, never timed, so a feed that goes quiet while
// still running (a wall-clock-paced replay between I-frames, a stalled
// push producer) holds partial batches open and siblings' detections wait
// on its cadence. Batching suits throughput-oriented replay and bounded
// feeds; for latency-sensitive live sources keep batchSize 1.
func WithHubInference(det *Detector, batchSize int) HubOption {
	return func(h *Hub) { h.plane = NewInferencePlane(det, batchSize) }
}

// WithHubPlane shares an existing plane (e.g. one plane spanning several
// hubs). See WithHubInference.
func WithHubPlane(p *InferencePlane) HubOption {
	return func(h *Hub) { h.plane = p }
}

// WithHubTelemetry shares one metrics registry across the hub: every feed
// added afterwards records its per-feed series into reg (see
// WithTelemetry), and the hub's inference and ingest planes register their
// counters there too. Without it the hub owns a private registry, exposed
// by Telemetry() — the stats structs are views over the registry either
// way.
func WithHubTelemetry(reg *Registry) HubOption {
	return func(h *Hub) { h.reg = reg }
}

// WithHubTrace records every feed's pipeline spans into t (see
// WithTracer). A nil tracer disables tracing.
func WithHubTrace(t *Tracer) HubOption {
	return func(h *Hub) { h.tracer = t }
}

// withHubSite names the edge site this hub embodies: feed series gain a
// {site} label and spans render under the site's process in the exported
// trace. Threaded by Cluster when it builds its per-site hubs.
func withHubSite(name string) HubOption {
	return func(h *Hub) { h.site = name }
}

// WithListener attaches a network ingest plane: Run first opens the
// listener's admission window, accepting wire feeds (each HELLO becomes
// a hub feed fed by its connection) until the expected count is reached,
// then freezes the feed set and runs it as usual. Wire feeds may be
// mixed freely with feeds added in-process via Add. Disconnected wire
// feeds stay live awaiting a RESUME until the run completes. See
// IngestListener and PROTOCOL.md.
func WithListener(l *IngestListener) HubOption {
	return func(h *Hub) { h.ingest = l }
}

// FeedStats is one feed's counters plus its terminal error, if any.
type FeedStats struct {
	SessionStats
	// Err is the feed's terminal error message ("" while running or on
	// success).
	Err string
}

// HubStats aggregates a snapshot across feeds.
type HubStats struct {
	// Feeds lists per-feed stats in Add order.
	Feeds []FeedStats
	// Frames/IFrames/Detections/PayloadBytes are the cross-feed totals.
	Frames       int
	IFrames      int
	Detections   int
	PayloadBytes int64
	// Inference holds the shared plane's batching counters (zero unless the
	// hub was built with WithHubInference/WithHubPlane).
	Inference InferenceStats
	// Ingest holds the network ingest plane's counters (zero unless the
	// hub was built with WithListener).
	Ingest IngestStats
}

// FilterRate is the aggregate share of frames dropped across all feeds.
func (st HubStats) FilterRate() float64 {
	if st.Frames == 0 {
		return 0
	}
	return 1 - float64(st.IFrames)/float64(st.Frames)
}

// Hub multiplexes N concurrent sessions over the internal worker pool with
// per-feed isolation: one feed's failure cancels only that feed, the others
// run to completion, and Run returns the joined per-feed errors. Events from
// all feeds are merged onto one channel, each tagged with its feed name.
//
// Usage: Add feeds, consume Events concurrently, call Run, then Snapshot.
type Hub struct {
	pool    *runner.Pool
	bufSize int
	plane   *InferencePlane     // shared inference plane, nil = per-feed config
	ingest  *IngestListener     // network ingest plane, nil = in-process only
	reg     *telemetry.Registry // shared metrics registry (private by default)
	tracer  *telemetry.Tracer   // span recorder, nil = tracing off
	site    string              // owning site label, "" for a plain hub

	mu      sync.Mutex
	feeds   []*hubFeed
	started bool
	events  chan Event
}

type hubFeed struct {
	name string
	sess *Session
	err  error
	done bool
}

// NewHub returns an empty hub.
func NewHub(opts ...HubOption) *Hub {
	h := &Hub{pool: runner.New(0), bufSize: 256}
	for _, opt := range opts {
		opt(h)
	}
	if h.reg == nil {
		h.reg = telemetry.NewRegistry()
	}
	// Bind the shared planes' counters into the hub registry now, before
	// any traffic: construction-time registration is the zero-alloc
	// recording contract, and the planes' accumulated counts are still
	// zero, so rebinding transfers nothing.
	if h.plane != nil {
		h.plane.p.Instrument(h.reg, siteSeriesLabels(h.site)...)
	}
	if h.ingest != nil {
		h.ingest.instrument(h.reg)
	}
	h.events = make(chan Event, h.bufSize)
	return h
}

// siteSeriesLabels is the {site} label set for site-scoped planes (empty
// for a plain hub, whose series carry no site dimension).
func siteSeriesLabels(site string) []MetricLabel {
	if site == "" {
		return nil
	}
	return []MetricLabel{telemetry.L("site", site)}
}

// Telemetry returns the hub's metrics registry (the one shared via
// WithHubTelemetry, or the hub's private default).
func (h *Hub) Telemetry() *Registry { return h.reg }

// Add registers a feed: a named session over src, configured like any
// Session (the name overrides WithName). Feeds cannot be added once Run has
// started: Add then returns an error wrapping ErrStarted.
func (h *Hub) Add(name string, src FrameSource, opts ...SessionOption) (*Session, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.started {
		return nil, fmt.Errorf("sieve: hub: add feed %q: %w", name, ErrStarted)
	}
	for _, f := range h.feeds {
		if f.name == name {
			return nil, fmt.Errorf("sieve: hub: duplicate feed %q", name)
		}
	}
	// Prepended so a feed's own inference and telemetry options still win.
	shared := []SessionOption{WithTelemetry(h.reg), WithTracer(h.tracer), withTraceSite(h.site)}
	if h.plane != nil {
		shared = append(shared, WithInferencePlane(h.plane))
	}
	opts = append(shared, opts...)
	opts = append(opts[:len(opts):len(opts)], WithName(name))
	sess, err := NewSession(src, opts...)
	if err != nil {
		return nil, err
	}
	h.feeds = append(h.feeds, &hubFeed{name: name, sess: sess})
	return sess, nil
}

// Events returns the merged event stream, closed when Run returns.
func (h *Hub) Events() <-chan Event { return h.events }

// Run executes every feed's session over the worker pool and blocks until
// all complete. A feed error cancels that feed only; Run returns the joined
// feed errors (nil when every feed succeeded). Cancelling ctx stops all
// feeds. Run may be called once: a second call returns an error wrapping
// ErrAlreadyRun, and a Run with no feeds returns one wrapping ErrNoFeeds
// (closing Events either way, so consumers never hang).
func (h *Hub) Run(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	h.mu.Lock()
	if h.started {
		h.mu.Unlock()
		return fmt.Errorf("sieve: hub: %w", ErrAlreadyRun)
	}
	// The admission window runs before the feed set freezes: wire feeds
	// admit themselves through Add exactly like in-process callers.
	if h.ingest != nil {
		ingest := h.ingest
		h.mu.Unlock()
		if err := ingest.start(ctx, hubIngestTarget{h}); err != nil {
			close(h.events)
			return fmt.Errorf("sieve: hub: %w", err)
		}
		defer ingest.runEnded()
		if err := ingest.awaitAdmission(ctx); err != nil {
			h.mu.Lock()
			h.started = true
			h.mu.Unlock()
			close(h.events)
			return fmt.Errorf("sieve: hub: %w", err)
		}
		h.mu.Lock()
	}
	h.started = true
	feeds := append([]*hubFeed(nil), h.feeds...)
	h.mu.Unlock()
	if len(feeds) == 0 {
		close(h.events)
		return fmt.Errorf("sieve: hub: %w", ErrNoFeeds)
	}

	// Cold-start batching: promise the plane the registrations that are
	// guaranteed imminent, so the first I-frames coalesce instead of
	// flushing one by one while sibling feeds are still spinning up. The
	// pool starts exactly the first Workers() feeds immediately, and a
	// session registers on Run entry before it can block — so only
	// plane-bound feeds inside that window may be counted. A feed beyond
	// the window (or one that overrode the hub plane) must not be: its
	// registration could wait on a worker held by a long or unbounded
	// sibling, and an unconsumed reservation would hold batches open
	// forever.
	if h.plane != nil {
		h.plane.p.Reserve(planeReservation(feeds, h.plane, h.pool.Workers()))
	}

	// Forward each session's events onto the merged channel.
	var fwd sync.WaitGroup
	for _, f := range feeds {
		fwd.Add(1)
		go func(f *hubFeed) {
			defer fwd.Done()
			for ev := range f.sess.Events() {
				select {
				case h.events <- ev:
				case <-ctx.Done():
					// Sessions unblock themselves on cancellation; just
					// drain so their channels can close.
					for range f.sess.Events() {
					}
					return
				}
			}
		}(f)
	}

	// Feed errors travel as values so the pool's first-error cancellation
	// never couples one feed's failure to its siblings (a failing session
	// simply returns; its source and goroutines are its own to unwind).
	_, mapErr := runner.Map(ctx, h.pool, len(feeds), func(ctx context.Context, i int) (struct{}, error) {
		err := feeds[i].sess.Run(ctx)
		h.mu.Lock()
		feeds[i].err = err
		feeds[i].done = true
		h.mu.Unlock()
		return struct{}{}, nil
	})
	// Feeds the pool never started (parent cancellation) still must close
	// their event channels so the forwarders terminate.
	for _, f := range feeds {
		h.mu.Lock()
		done := f.done
		h.mu.Unlock()
		if !done {
			f.sess.abort()
			h.mu.Lock()
			f.err = ctx.Err()
			f.done = true
			h.mu.Unlock()
		}
	}
	fwd.Wait()
	close(h.events)

	errs := make([]error, 0, len(feeds)+1)
	if mapErr != nil {
		errs = append(errs, mapErr)
	}
	for _, f := range feeds {
		if f.err != nil {
			errs = append(errs, fmt.Errorf("feed %s: %w", f.name, f.err))
		}
	}
	return errors.Join(errs...)
}

// planeReservation counts the feeds bound to plane among the first window
// entries — the feeds the pool starts immediately (runner.Map hands out
// indexes in order), each of which registers on Run entry before it can
// block. Reservations must never exceed that guaranteed-imminent set: a
// plane feed beyond the window waits for a worker that a long or unbounded
// sibling may hold indefinitely, and a reservation nobody consumes would
// hold every partial batch open forever.
func planeReservation(feeds []*hubFeed, plane *InferencePlane, window int) int {
	using := 0
	for _, f := range feeds {
		if window <= 0 {
			break
		}
		window--
		if f.sess.cfg.plane == plane {
			using++
		}
	}
	return using
}

// Snapshot reports per-feed and aggregate counters; safe to call while Run
// is in flight.
func (h *Hub) Snapshot() HubStats {
	h.mu.Lock()
	feeds := append([]*hubFeed(nil), h.feeds...)
	h.mu.Unlock()
	st := HubStats{Feeds: make([]FeedStats, 0, len(feeds))}
	if h.plane != nil {
		st.Inference = h.plane.Stats()
	}
	if h.ingest != nil {
		st.Ingest = h.ingest.Stats()
	}
	for _, f := range feeds {
		fs := FeedStats{SessionStats: f.sess.Stats()}
		h.mu.Lock()
		if f.err != nil {
			fs.Err = f.err.Error()
		}
		h.mu.Unlock()
		st.Feeds = append(st.Feeds, fs)
		st.Frames += fs.Frames
		st.IFrames += fs.IFrames
		st.Detections += fs.Detections
		st.PayloadBytes += fs.PayloadBytes
	}
	return st
}
