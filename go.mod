module sieve

go 1.24
