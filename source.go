package sieve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"sieve/internal/codec"
	"sieve/internal/container"
	"sieve/internal/frame"
	"sieve/internal/synth"
)

// Clock abstracts time for stream pacing and event timestamps. Production
// code uses RealClock; tests and reproducible replays inject a VirtualClock
// so a paced session is both instant and deterministic.
type Clock interface {
	// Now returns the clock's current time.
	Now() time.Time
	// Sleep blocks for d on this clock, or until ctx is cancelled (in which
	// case it returns the context error).
	Sleep(ctx context.Context, d time.Duration) error
}

type realClock struct{}

//sieve:wallclock this IS the wall clock behind the Clock interface
func (realClock) Now() time.Time { return time.Now() }

//sieve:wallclock this IS the wall clock behind the Clock interface
func (realClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// RealClock returns the wall clock.
func RealClock() Clock { return realClock{} }

// VirtualClock is a deterministic clock: Sleep advances it by the requested
// duration without blocking, and Now returns the accumulated virtual time.
// Give each session its own VirtualClock — sharing one across concurrent
// feeds makes their timestamps depend on goroutine interleaving.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewVirtualClock returns a virtual clock starting at start.
func NewVirtualClock(start time.Time) *VirtualClock {
	return &VirtualClock{now: start}
}

// Now returns the current virtual time.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep advances the virtual time by d immediately (cancellation is still
// honoured so cancelled sessions stop at the same points as real ones).
func (c *VirtualClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d > 0 {
		c.mu.Lock()
		c.now = c.now.Add(d)
		c.mu.Unlock()
	}
	return nil
}

// SourceInfo describes a frame source's geometry and nominal rate.
type SourceInfo struct {
	// Name identifies the feed (camera id, preset name, ...).
	Name string
	// Width and Height are the frame geometry in pixels.
	Width, Height int
	// FPS is the nominal capture rate.
	FPS int
	// Frames is the total frame count when known, or -1 for live/unbounded
	// sources (push feeds).
	Frames int
}

// FrameSource is a pull-based, context-aware stream of video frames — the
// streaming-first entry point of the public API. Implementations in this
// package: SynthSource (synthetic presets rendered frame-at-a-time),
// ReplaySource (SVF replay, optionally paced at capture rate) and PushSource
// (programmatic ingest).
//
// Next returns io.EOF when the stream ends. The returned frame may be
// reused by the next Next call; callers that retain a frame across calls
// must Clone it.
type FrameSource interface {
	Info() SourceInfo
	Next(ctx context.Context) (*Frame, error)
}

// SynthSource streams a synthetic dataset one frame at a time, reusing a
// single frame buffer — hours-long feeds are rendered incrementally, never
// materialised.
type SynthSource struct {
	v   *Dataset
	i   int
	buf *Frame
}

// NewSynthSource wraps a synthetic video as a FrameSource.
func NewSynthSource(v *Dataset) *SynthSource { return &SynthSource{v: v} }

// OpenSynthSource builds one of the Table I presets and wraps it as a
// FrameSource.
func OpenSynthSource(name synth.PresetName, seconds, fps int) (*SynthSource, error) {
	v, err := LoadDataset(name, seconds, fps)
	if err != nil {
		return nil, err
	}
	return NewSynthSource(v), nil
}

// Info implements FrameSource.
func (s *SynthSource) Info() SourceInfo {
	spec := s.v.Spec()
	return SourceInfo{
		Name: spec.Name, Width: spec.Width, Height: spec.Height,
		FPS: spec.FPS, Frames: s.v.NumFrames(),
	}
}

// Next implements FrameSource.
func (s *SynthSource) Next(ctx context.Context) (*Frame, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.i >= s.v.NumFrames() {
		return nil, io.EOF
	}
	s.buf = s.v.RenderInto(s.i, s.buf)
	s.i++
	return s.buf, nil
}

// Seek positions the source so the next Next returns frame i. Synthetic
// frames are rendered on demand, so seeking in either direction is O(1).
// Seeking to NumFrames() is valid and makes the next Next return io.EOF.
// A Pusher resuming after a reconnect seeks to the server's ResumeFrom.
func (s *SynthSource) Seek(i int) error {
	if i < 0 || i > s.v.NumFrames() {
		return fmt.Errorf("sieve: synth seek %d out of range [0,%d]", i, s.v.NumFrames())
	}
	s.i = i
	return nil
}

// ReplayOption configures a ReplaySource.
type ReplayOption func(*ReplaySource)

// PacedBy makes the replay deliver frames at the stream's capture rate,
// sleeping one frame interval on c between frames. With a VirtualClock the
// replay is instant but the session's timestamps advance exactly as a live
// feed's would.
func PacedBy(c Clock) ReplayOption {
	return func(s *ReplaySource) { s.clock = c }
}

// ReplaySource streams a recorded SVF stream back through the pipeline,
// decoding sequentially — the "replayed-at-rate camera" of the deployment
// story.
type ReplaySource struct {
	r        *container.Reader
	dec      *codec.Decoder
	buf      *Frame // reused decode target (FrameSource contract: valid until next Next)
	i        int
	clock    Clock // nil = as fast as the consumer pulls
	frameDur time.Duration
}

// NewReplaySource wraps a parsed SVF stream as a FrameSource.
func NewReplaySource(r *container.Reader, opts ...ReplayOption) (*ReplaySource, error) {
	dec, err := codec.NewDecoder(r.Info().CodecParams())
	if err != nil {
		return nil, err
	}
	s := &ReplaySource{r: r, dec: dec}
	if fps := r.Info().FPS; fps > 0 {
		s.frameDur = time.Second / time.Duration(fps)
	}
	for _, opt := range opts {
		opt(s)
	}
	return s, nil
}

// Info implements FrameSource.
func (s *ReplaySource) Info() SourceInfo {
	info := s.r.Info()
	return SourceInfo{
		Name: "replay", Width: info.Width, Height: info.Height,
		FPS: info.FPS, Frames: s.r.NumFrames(),
	}
}

// Next implements FrameSource.
func (s *ReplaySource) Next(ctx context.Context) (*Frame, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.i >= s.r.NumFrames() {
		return nil, io.EOF
	}
	if s.clock != nil && s.i > 0 {
		if err := s.clock.Sleep(ctx, s.frameDur); err != nil {
			return nil, err
		}
	}
	payload, err := s.r.Payload(s.i)
	if err != nil {
		return nil, err
	}
	if s.buf == nil {
		info := s.r.Info()
		s.buf = frame.NewYUV(info.Width, info.Height)
	}
	if err := s.dec.DecodeInto(payload, s.buf); err != nil {
		return nil, fmt.Errorf("sieve: replay frame %d: %w", s.i, err)
	}
	s.i++
	return s.buf, nil
}

// Seek positions the replay so the next Next returns frame target.
// P-frames predict from their predecessor, so seeking rolls the decoder
// forward from the latest I-frame before target (without pacing sleeps);
// seeking to an I-frame or to NumFrames() (end of stream) is O(1). A
// Pusher resuming a replay feed after a reconnect seeks to the server's
// ResumeFrom.
func (s *ReplaySource) Seek(target int) error {
	n := s.r.NumFrames()
	if target < 0 || target > n {
		return fmt.Errorf("sieve: replay seek %d out of range [0,%d]", target, n)
	}
	if target == n || target == 0 || s.r.Meta(target).Type == codec.FrameI {
		s.i = target
		return nil
	}
	// Find the latest I-frame at or before target-1, then decode forward
	// so the decoder's reference is frame target-1.
	start := 0
	for _, m := range s.r.IFrames() {
		if m.Index > target-1 {
			break
		}
		start = m.Index
	}
	if s.buf == nil {
		info := s.r.Info()
		s.buf = frame.NewYUV(info.Width, info.Height)
	}
	for i := start; i < target; i++ {
		payload, err := s.r.Payload(i)
		if err != nil {
			return err
		}
		if err := s.dec.DecodeInto(payload, s.buf); err != nil {
			return fmt.Errorf("sieve: replay seek decoding frame %d: %w", i, err)
		}
	}
	s.i = target
	return nil
}

// ErrSourceClosed is returned by PushSource.Push after Close.
var ErrSourceClosed = errors.New("sieve: push source closed")

// PushSource is a programmatic FrameSource: producers Push frames (camera
// drivers, RTSP adapters, tests) and a Session pulls them. Push blocks when
// the buffer is full, giving producers natural backpressure.
type PushSource struct {
	info SourceInfo
	ch   chan *Frame
	done chan struct{}

	mu     sync.Mutex
	closed bool
	err    error
}

// NewPushSource returns a push source for the given geometry with an
// internal buffer of the given capacity (minimum 1).
func NewPushSource(name string, width, height, fps, buffer int) *PushSource {
	if buffer < 1 {
		buffer = 1
	}
	return &PushSource{
		info: SourceInfo{Name: name, Width: width, Height: height, FPS: fps, Frames: -1},
		ch:   make(chan *Frame, buffer),
		done: make(chan struct{}),
	}
}

// Push enqueues one frame, blocking while the buffer is full. It returns
// ErrSourceClosed after Close, or the context error on cancellation. The
// pushed frame is handed to the consumer as-is; do not mutate it afterwards.
func (s *PushSource) Push(ctx context.Context, f *Frame) error {
	if f == nil {
		return errors.New("sieve: push of nil frame")
	}
	select {
	case <-s.done:
		return ErrSourceClosed
	default:
	}
	select {
	case s.ch <- f:
		return nil
	case <-s.done:
		return ErrSourceClosed
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close ends the stream. Frames already pushed are still delivered; after
// that the consumer sees io.EOF when err is nil, or err itself (a camera
// failure, for instance). Close is idempotent; only the first call counts.
func (s *PushSource) Close(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.err = err
	close(s.done)
}

// Info implements FrameSource.
func (s *PushSource) Info() SourceInfo { return s.info }

// Next implements FrameSource.
func (s *PushSource) Next(ctx context.Context) (*Frame, error) {
	select {
	case f := <-s.ch:
		return f, nil
	case <-s.done:
		// Drain frames that were pushed before Close.
		select {
		case f := <-s.ch:
			return f, nil
		default:
		}
		s.mu.Lock()
		err := s.err
		s.mu.Unlock()
		if err == nil {
			err = io.EOF
		}
		return nil, err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}
