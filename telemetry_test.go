package sieve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"sieve/internal/telemetry"
	"sieve/internal/telemetry/debughttp"
)

// testTracer returns a tracer on its own VirtualClock. The clock is never
// advanced, so every span lands at the epoch — which is exactly what the
// determinism tests want: the export order is the canonical span sort, not
// goroutine interleaving.
func testTracer() *Tracer { return NewTracer(testClock()) }

// runTracedClusterJSON is runClusterJSON plus a fresh registry and tracer,
// returning the merged-DB JSON and the exported Chrome trace JSON.
func runTracedClusterJSON(t *testing.T, opts ...ClusterOption) ([]byte, []byte, *Cluster, *Registry) {
	t.Helper()
	reg := NewRegistry()
	tr := testTracer()
	opts = append([]ClusterOption{WithClusterTelemetry(reg), WithClusterTrace(tr)}, opts...)
	db, c := runClusterJSON(t, opts...)
	var trace bytes.Buffer
	if err := tr.WriteChrome(&trace); err != nil {
		t.Fatal(err)
	}
	return db, trace.Bytes(), c, reg
}

// TestClusterTelemetryEquivalence pins the observability plane's prime
// invariant: attaching a shared registry and tracer changes where counters
// live, never what is computed — the merged ResultsDB JSON is byte-identical
// telemetry-on vs telemetry-off — and the registry view agrees with the
// legacy ClusterStats snapshot.
func TestClusterTelemetryEquivalence(t *testing.T) {
	on, trace, c, reg := runTracedClusterJSON(t)
	off, _ := runClusterJSON(t)
	if !bytes.Equal(on, off) {
		t.Fatalf("merged ResultsDB differs telemetry-on vs off:\non:\n%s\noff:\n%s", on, off)
	}

	st := c.Snapshot()
	snap := reg.Snapshot()
	sum := func(family string) (n int64) {
		for _, cp := range snap.Counters {
			if strings.HasPrefix(cp.Key, family+"{") {
				n += cp.Value
			}
		}
		return n
	}
	if got := sum("sieve_frames_total"); int(got) != st.Frames {
		t.Fatalf("sieve_frames_total = %d, ClusterStats.Frames = %d", got, st.Frames)
	}
	if got := sum("sieve_iframes_total"); int(got) != st.IFrames {
		t.Fatalf("sieve_iframes_total = %d, ClusterStats.IFrames = %d", got, st.IFrames)
	}
	if got := sum("sieve_detections_total"); int(got) != st.Detections {
		t.Fatalf("sieve_detections_total = %d, ClusterStats.Detections = %d", got, st.Detections)
	}
	if got := sum("sieve_payload_bytes_total"); got != st.PayloadBytes {
		t.Fatalf("sieve_payload_bytes_total = %d, ClusterStats.PayloadBytes = %d", got, st.PayloadBytes)
	}
	if got := snap.Counter("sieve_cluster_delta_syncs_total"); got != st.DeltaSyncs {
		t.Fatalf("sieve_cluster_delta_syncs_total = %d, ClusterStats.DeltaSyncs = %d", got, st.DeltaSyncs)
	}
	// The histogram accounted every encoded frame.
	var hCount int64
	for _, hp := range snap.Histograms {
		if strings.HasPrefix(hp.Key, "sieve_frame_bytes{") {
			hCount += hp.Count
		}
	}
	if int(hCount) != st.Frames {
		t.Fatalf("sieve_frame_bytes observations = %d, want %d frames", hCount, st.Frames)
	}
	// The sampled gauges collected per-site storage.
	var stored int64
	for _, gp := range snap.Gauges {
		if strings.HasPrefix(gp.Key, "sieve_cluster_edge_store_bytes{") {
			stored += gp.Value
		}
	}
	var want int64
	for _, ss := range st.Sites {
		want += ss.StoredBytes
	}
	if stored != want {
		t.Fatalf("edge store gauges sum to %d, SiteStats say %d", stored, want)
	}

	summary, err := SummarizeChromeTrace(bytes.NewReader(trace))
	if err != nil {
		t.Fatalf("exported trace does not validate: %v", err)
	}
	if summary.Events == 0 {
		t.Fatal("trace has no span events")
	}
	stages := make(map[string]int)
	for _, sc := range summary.Stages {
		stages[sc.Stage] = sc.Count
	}
	if stages["pull"] == 0 || stages["encode"] == 0 || stages["infer"] == 0 || stages["ship"] == 0 {
		t.Fatalf("missing pipeline stages in trace: %v", stages)
	}
	if stages["merge"] != 1 {
		t.Fatalf("merge spans = %d, want exactly 1", stages["merge"])
	}
	if stages["encode"] != st.Frames {
		t.Fatalf("encode spans = %d, want one per frame (%d)", stages["encode"], st.Frames)
	}
	if stages["filter"] != st.IFrames {
		t.Fatalf("filter spans = %d, want one per I-frame (%d)", stages["filter"], st.IFrames)
	}
}

// TestClusterTraceDeterminism is the tracing acceptance bar: two identical
// VirtualClock cluster runs export byte-identical Chrome trace JSON.
func TestClusterTraceDeterminism(t *testing.T) {
	_, a, _, _ := runTracedClusterJSON(t)
	_, b, _, _ := runTracedClusterJSON(t)
	if !bytes.Equal(a, b) {
		t.Fatalf("trace JSON differs between identical runs:\n%s\nvs\n%s", a, b)
	}
}

// TestClusterFailoverTraceDeterminism extends the bar to scripted faults:
// a crash drops the dead site's span buffer (how far the dying site limped
// past its trigger is scheduling noise), so even a failover run's trace is
// byte-identical across repeats and mentions no crashed site.
func TestClusterFailoverTraceDeterminism(t *testing.T) {
	plan, err := ParseFaultPlan("crash:site1:cam-south@6")
	if err != nil {
		t.Fatal(err)
	}
	_, a, _, _ := runTracedClusterJSON(t, WithFaultPlan(plan))
	_, b, _, _ := runTracedClusterJSON(t, WithFaultPlan(plan))
	if !bytes.Equal(a, b) {
		t.Fatalf("failover trace JSON differs between identical runs:\n%s\nvs\n%s", a, b)
	}
	summary, err := SummarizeChromeTrace(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	for _, site := range summary.Sites {
		if site == "site1" {
			t.Fatalf("crashed site1 still present in trace sites %v", summary.Sites)
		}
	}
	if summary.Events == 0 {
		t.Fatal("failover trace has no span events")
	}
}

// TestClusterSnapshotConcurrentMidRun hammers ClusterStats, HubStats and
// registry snapshots from several goroutines while the run is in flight.
// Under -race this is the regression net for torn stats reads; the
// monotonicity check catches counters that go backwards mid-run.
func TestClusterSnapshotConcurrentMidRun(t *testing.T) {
	c, err := NewCluster(3, WithSharder(ShardRoundRobin()), WithSiteWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, cam := range clusterCameras {
		if _, _, err := c.AddFeed(cam.name, NewSynthSource(clusterScene(t, cam.seed, cam.enter)), feedOpts(t)...); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var snapshots sync.WaitGroup
	errc := make(chan error, 4)
	for i := 0; i < 4; i++ {
		snapshots.Add(1)
		go func() {
			defer snapshots.Done()
			prev := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := c.Snapshot()
				if st.Frames < prev {
					select {
					case errc <- fmt.Errorf("ClusterStats.Frames went backwards: %d after %d", st.Frames, prev):
					default:
					}
					return
				}
				prev = st.Frames
				_ = c.Telemetry().Snapshot()
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range c.Events() {
		}
	}()
	if err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	<-done
	close(stop)
	snapshots.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	st := c.Snapshot()
	if st.Frames == 0 || st.Detections == 0 {
		t.Fatalf("final snapshot empty: %d frames, %d detections", st.Frames, st.Detections)
	}
}

// TestDebugEndpointScrapesMidRun runs a cluster with the debug surface
// attached and scrapes /metrics while the run is in flight: the exposition
// must parse, and a post-run scrape must agree with the final snapshot.
func TestDebugEndpointScrapesMidRun(t *testing.T) {
	reg := NewRegistry()
	c, err := NewCluster(3, WithSharder(ShardRoundRobin()), WithSiteWorkers(2), WithClusterTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	for _, cam := range clusterCameras {
		if _, _, err := c.AddFeed(cam.name, NewSynthSource(clusterScene(t, cam.seed, cam.enter)), feedOpts(t)...); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := debughttp.Start("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	scrape := func() (map[string]float64, error) {
		resp, err := http.Get("http://" + srv.Addr() + "/metrics")
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			return nil, fmt.Errorf("GET /metrics: %s: %s", resp.Status, body)
		}
		return telemetry.ParseExposition(resp.Body)
	}

	var midErr error
	midScrapes := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range c.Events() {
			if ev.Kind != EventDetection || midErr != nil {
				continue
			}
			if _, err := scrape(); err != nil {
				midErr = err
				continue
			}
			midScrapes++
		}
	}()
	if err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	<-done
	if midErr != nil {
		t.Fatalf("mid-run scrape: %v", midErr)
	}
	if midScrapes == 0 {
		t.Fatal("no successful mid-run scrapes")
	}

	final, err := scrape()
	if err != nil {
		t.Fatal(err)
	}
	st := c.Snapshot()
	var frames float64
	for key, v := range final {
		if strings.HasPrefix(key, "sieve_frames_total{") {
			frames += v
		}
	}
	if int(frames) != st.Frames {
		t.Fatalf("scraped sieve_frames_total = %v, ClusterStats.Frames = %d", frames, st.Frames)
	}
}

// TestSessionTelemetryStandalone covers the non-cluster path: a lone
// session with WithTelemetry and WithTracer records the same counts its
// SessionStats report, and EventStats snapshots stay exact (the session
// goroutine is the only writer of its counters).
func TestSessionTelemetryStandalone(t *testing.T) {
	reg := NewRegistry()
	tr := testTracer()
	src := NewSynthSource(clusterScene(t, 21, 3))
	sess, err := NewSession(src, WithName("solo"), WithClock(testClock()),
		WithTelemetry(reg), WithTracer(tr), WithDetector(trainedTestDetector(t)))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range sess.Events() {
		}
	}()
	if err := sess.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	<-done
	st := sess.Stats()
	snap := reg.Snapshot()
	if got := snap.Counter(`sieve_frames_total{feed="solo"}`); int(got) != st.Frames {
		t.Fatalf("registry frames = %d, SessionStats.Frames = %d", got, st.Frames)
	}
	if got := snap.Counter(`sieve_iframes_total{feed="solo"}`); int(got) != st.IFrames {
		t.Fatalf("registry iframes = %d, SessionStats.IFrames = %d", got, st.IFrames)
	}
	if sess.Telemetry() != reg {
		t.Fatal("Session.Telemetry did not return the shared registry")
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	summary, err := SummarizeChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(summary.Feeds) != 1 || summary.Feeds[0] != "solo" {
		t.Fatalf("trace feeds = %v, want [solo]", summary.Feeds)
	}
}
